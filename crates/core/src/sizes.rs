//! Buffer size model and the shard-count / concurrency derivation of
//! Section 4.3 (Equations (1)–(2)).
//!
//! The Partition Engine must pick the shard count `P` and the number of
//! concurrently in-flight shards `K` such that
//!
//! ```text
//! K·(V/P) + K·B ≤ M          (1)
//! B = α·|E| + β·|V|          (2)
//! ```
//!
//! where `M` is device memory left after static buffers and `B` the
//! per-shard streaming footprint. We derive the minimal `P` whose largest
//! shard fits `K` times into the streaming budget; `K` itself follows the
//! paper's observation that with one DMA engine per direction, two
//! saturating shards in flight (one transferring, one computing) already
//! achieve full overlap — their derivation yields K = 2 on the K20c.

use gr_graph::{EvenEdgePartition, GraphLayout, PartitionLogic, Shard};
use gr_sim::{DeviceConfig, PcieConfig};

/// Byte sizes of every buffer class for one program instantiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeModel {
    /// `size_of::<VertexValue>()`.
    pub vertex_value: u64,
    /// `size_of::<Gather>()`.
    pub gather: u64,
    /// `size_of::<EdgeValue>()`.
    pub edge_value: u64,
    /// Whether the Gather phase exists (in-edge buffers stream at all).
    pub has_gather: bool,
    /// Whether the Scatter phase exists (out-edge values stream back).
    pub has_scatter: bool,
}

impl SizeModel {
    /// The byte model derived from a program's data types and phase set —
    /// the single definition both the single-GPU and multi-GPU frontends
    /// build their plans from.
    pub fn for_program<P: crate::api::GasProgram>(program: &P) -> Self {
        SizeModel {
            vertex_value: std::mem::size_of::<P::VertexValue>() as u64,
            gather: std::mem::size_of::<P::Gather>() as u64,
            edge_value: std::mem::size_of::<P::EdgeValue>() as u64,
            has_gather: program.has_gather(),
            has_scatter: program.has_scatter(),
        }
    }

    /// Static (resident for the whole run) device bytes: the vertex value
    /// array, the gather-temp array, per-vertex layout metadata (CSC/CSR
    /// offsets and degrees, 24 B), and three frontier bitmaps (current,
    /// changed, next).
    pub fn static_bytes(&self, num_vertices: u64) -> u64 {
        let bitmaps = 3 * num_vertices.div_ceil(8);
        num_vertices * (self.vertex_value + if self.has_gather { self.gather } else { 0 } + 24)
            + bitmaps
    }

    /// Streamed bytes per in-edge: source id + static weight + canonical
    /// index (12), the per-edge `edge_update_array` slot that gatherMap
    /// writes (gather size + valid flag, Figure 7), per-edge shard state
    /// (16), and the mutable edge value. Zero when the program has no
    /// gather — phase elimination drops the whole buffer (Section 5.3).
    ///
    /// The record widths are calibrated so a full GAS program's working set
    /// matches the paper's own footprint accounting (Table 1:
    /// 52.5 B/edge + 60 B/vertex, defined to include edge/vertex data
    /// states "and a few of the temporary buffers") — this is what makes
    /// every Table 1 dataset land on the same side of device memory at
    /// runtime as in the paper.
    pub fn in_edge_bytes(&self) -> u64 {
        if self.has_gather {
            12 + (self.gather + 4) + 16 + self.edge_value
        } else {
            0
        }
    }

    /// Streamed bytes per out-edge: destination id + canonical id +
    /// activation flags (12) and per-edge state (8) — FrontierActivate
    /// always needs the out-edge records (Section 5.3) — plus the mutable
    /// value when the program scatters.
    pub fn out_edge_bytes(&self) -> u64 {
        12 + 8 + if self.has_scatter { self.edge_value } else { 0 }
    }

    /// Full streaming footprint of one shard (Equation (2)'s `B` with
    /// α, β realized by the program's types).
    pub fn shard_bytes(&self, shard: &Shard) -> u64 {
        shard.num_in_edges() * self.in_edge_bytes()
            + shard.num_out_edges() * self.out_edge_bytes()
            // interval-local scratch: per-vertex activation flags.
            + shard.num_vertices().div_ceil(8) * 2
    }
}

/// A resolved partition plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionPlan {
    /// Shard descriptors.
    pub shards: Vec<Shard>,
    /// Concurrently in-flight shards (`K`).
    pub concurrent: u32,
    /// Largest single-shard streaming footprint.
    pub max_shard_bytes: u64,
    /// Static buffer bytes.
    pub static_bytes: u64,
    /// Whether *all* shards fit on the device simultaneously alongside the
    /// static buffers (in-GPU-memory mode).
    pub all_resident: bool,
}

/// Why planning failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Static buffers alone exceed device memory: the vertex set does not
    /// fit. (The paper assumes vertex sets fit; Section 8 lists lifting
    /// this as future work.)
    StaticTooLarge { needed: u64, capacity: u64 },
    /// Even single-vertex intervals produce a shard too large for the
    /// streaming budget (a single vertex's edge lists exceed memory).
    ShardTooLarge { needed: u64, budget: u64 },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::StaticTooLarge { needed, capacity } => write!(
                f,
                "vertex set does not fit in device memory ({needed} B static vs {capacity} B)"
            ),
            PlanError::ShardTooLarge { needed, budget } => write!(
                f,
                "smallest possible shard needs {needed} B but streaming budget is {budget} B"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The buffer size at which an explicit copy reaches ~95% of link
/// bandwidth (latency amortized 20x): the paper's "minimum buffer size to
/// saturate PCIe bandwidth".
pub fn pcie_saturating_bytes(pcie: &PcieConfig) -> u64 {
    (pcie.explicit_bandwidth_gbps * 1e9 * pcie.transfer_latency.as_secs_f64() * 20.0) as u64
}

/// The paper's `K`: how many shards to keep in flight. Two saturating
/// shards (one on the DMA engine, one computing) achieve full overlap with
/// a single H2D engine; more only helps if memory is plentiful and shards
/// are small, so we allow up to 4 when they fit. A slot is considered
/// viable at 1/8 of the saturating size — below that, double buffering
/// stops paying and K collapses to 1.
pub fn optimal_concurrent_shards(
    streaming_budget: u64,
    saturating_bytes: u64,
    requested: u32,
) -> u32 {
    let min_slot = (saturating_bytes / 8).max(1);
    let fit = (streaming_budget / min_slot).clamp(1, 4) as u32;
    requested.clamp(1, fit.max(1))
}

/// Derive shards + concurrency for `layout` under `sizes` on `device`.
///
/// `requested_k` comes from [`crate::Options::concurrent_shards`];
/// `override_p` forces a shard count (ablation benches sweep it).
pub fn plan_partition(
    layout: &GraphLayout,
    sizes: &SizeModel,
    device: &DeviceConfig,
    pcie: &PcieConfig,
    requested_k: u32,
    override_p: Option<usize>,
) -> Result<PartitionPlan, PlanError> {
    plan_partition_with(
        layout,
        sizes,
        device,
        pcie,
        requested_k,
        override_p,
        &EvenEdgePartition,
    )
}

/// [`plan_partition`] with an explicit partition-logic plug-in (Section
/// 4.2's Partition Logic Table).
#[allow(clippy::too_many_arguments)] // the full Partition Engine interface
pub fn plan_partition_with(
    layout: &GraphLayout,
    sizes: &SizeModel,
    device: &DeviceConfig,
    pcie: &PcieConfig,
    requested_k: u32,
    override_p: Option<usize>,
    logic: &dyn PartitionLogic,
) -> Result<PartitionPlan, PlanError> {
    let v = layout.num_vertices() as u64;
    let static_bytes = sizes.static_bytes(v);
    if static_bytes > device.mem_capacity {
        return Err(PlanError::StaticTooLarge {
            needed: static_bytes,
            capacity: device.mem_capacity,
        });
    }
    let budget = device.mem_capacity - static_bytes;
    let k_wanted = optimal_concurrent_shards(budget, pcie_saturating_bytes(pcie), requested_k);
    // Degrade concurrency before refusing: a graph whose largest
    // unavoidable shard (a hub vertex's edge lists) exceeds the K-way slot
    // can still run with fewer shards in flight.
    let mut last_err = None;
    for k in (1..=k_wanted).rev() {
        match try_plan(
            layout,
            sizes,
            device.mem_capacity,
            budget,
            k,
            override_p,
            logic,
            v,
        ) {
            Ok(plan) => return Ok(plan),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one concurrency level attempted"))
}

#[allow(clippy::too_many_arguments)] // internal planning helper
fn try_plan(
    layout: &GraphLayout,
    sizes: &SizeModel,
    capacity: u64,
    budget: u64,
    k: u32,
    override_p: Option<usize>,
    logic: &dyn PartitionLogic,
    v: u64,
) -> Result<PartitionPlan, PlanError> {
    let static_bytes = sizes.static_bytes(v);
    let slot = budget / k as u64;

    let total_stream: u64 =
        layout.num_edges() * (sizes.in_edge_bytes() + sizes.out_edge_bytes()) + v.div_ceil(8) * 2;

    let mut p = override_p.unwrap_or_else(|| total_stream.div_ceil(slot.max(1)).max(1) as usize);
    loop {
        let intervals = logic.partition(layout, p);
        let shards = gr_graph::build_shards(layout, &intervals);
        let max_shard_bytes = shards
            .iter()
            .map(|s| sizes.shard_bytes(s))
            .max()
            .unwrap_or(0);
        if max_shard_bytes <= slot || override_p.is_some() {
            let mut k = k;
            if max_shard_bytes > slot && override_p.is_some() {
                if max_shard_bytes > budget {
                    return Err(PlanError::ShardTooLarge {
                        needed: max_shard_bytes,
                        budget,
                    });
                }
                // A forced (ablation) shard count can produce shards larger
                // than the K-way slot; shrink concurrency so K slots of the
                // actual maximum still fit Equation (1).
                k = (budget / max_shard_bytes).clamp(1, k as u64) as u32;
            }
            // Residency uses the *full-program* footprint (Table 1's
            // accounting), not the current program's possibly-eliminated
            // working set: the paper's out-of-memory datasets stream on
            // every algorithm, including gather-less BFS.
            let full_footprint = gr_graph::in_memory_bytes(v, layout.num_edges());
            let total: u64 = shards.iter().map(|s| sizes.shard_bytes(s)).sum();
            let all_resident = total <= budget && full_footprint <= capacity;
            return Ok(PartitionPlan {
                shards,
                concurrent: k,
                max_shard_bytes,
                static_bytes,
                all_resident,
            });
        }
        if p as u64 >= v.max(1) {
            return Err(PlanError::ShardTooLarge {
                needed: max_shard_bytes,
                budget: slot,
            });
        }
        // Grow the shard count geometrically; skewed graphs need headroom.
        p = (p * 3 / 2 + 1).min(v as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_graph::gen;
    use gr_sim::Platform;

    fn sizes() -> SizeModel {
        SizeModel {
            vertex_value: 4,
            gather: 4,
            edge_value: 0,
            has_gather: true,
            has_scatter: false,
        }
    }

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::rmat_g500(12, 120_000, 5))
    }

    #[test]
    fn byte_model_reflects_phase_elimination() {
        let mut s = sizes();
        assert_eq!(s.in_edge_bytes(), 36); // 12 topo + 8 update + 16 state
        assert_eq!(s.out_edge_bytes(), 20);
        s.has_gather = false;
        assert_eq!(s.in_edge_bytes(), 0);
        s.has_scatter = true;
        s.edge_value = 4;
        assert_eq!(s.out_edge_bytes(), 24);
        // The full-program record total tracks Table 1's 52.5 B/edge.
        s.has_gather = true;
        assert_eq!(s.in_edge_bytes() + s.out_edge_bytes(), 64);
    }

    #[test]
    fn static_bytes_cover_values_temps_bitmaps() {
        let s = sizes();
        // 100 vertices: 100*(4+4+24) + 3*ceil(100/8) = 3200 + 39.
        assert_eq!(s.static_bytes(100), 3239);
    }

    #[test]
    fn plan_fits_device() {
        let p = Platform::paper_node_scaled(4096);
        let g = layout();
        let plan = plan_partition(&g, &sizes(), &p.device, &p.pcie, 2, None).unwrap();
        assert!(
            plan.max_shard_bytes * plan.concurrent as u64 + plan.static_bytes
                <= p.device.mem_capacity
        );
        assert!(!plan.shards.is_empty());
    }

    #[test]
    fn small_graph_is_all_resident_in_one_shard() {
        let p = Platform::paper_node();
        let g = layout();
        let plan = plan_partition(&g, &sizes(), &p.device, &p.pcie, 2, None).unwrap();
        assert_eq!(plan.shards.len(), 1);
        assert!(plan.all_resident);
    }

    #[test]
    fn oversized_vertex_set_errors() {
        let mut dev = DeviceConfig::k20c();
        dev.mem_capacity = 10;
        let p = Platform::paper_node();
        let err = plan_partition(&layout(), &sizes(), &dev, &p.pcie, 2, None).unwrap_err();
        assert!(matches!(err, PlanError::StaticTooLarge { .. }));
    }

    #[test]
    fn concurrency_clamps() {
        assert_eq!(optimal_concurrent_shards(10_000_000, 1_000_000, 2), 2);
        assert_eq!(optimal_concurrent_shards(10_000_000, 1_000_000, 64), 4);
        // Budget below one viable (1/8-saturating) slot: no double buffering.
        assert_eq!(optimal_concurrent_shards(100_000, 1_000_000, 2), 1);
        assert_eq!(optimal_concurrent_shards(0, 1_000_000, 2), 1);
    }

    #[test]
    fn paper_node_derives_k2() {
        // The paper's own derivation: K = 2 on a 4.8 GB K20c for large graphs.
        let p = Platform::paper_node();
        let sat = pcie_saturating_bytes(&p.pcie);
        // Streaming budget: a few GB after the vertex set of e.g. uk-2002.
        let budget = 3_000_000_000;
        assert_eq!(optimal_concurrent_shards(budget, sat, 2), 2);
    }

    #[test]
    fn override_p_is_respected() {
        let p = Platform::paper_node();
        let g = layout();
        let plan = plan_partition(&g, &sizes(), &p.device, &p.pcie, 2, Some(7)).unwrap();
        assert_eq!(plan.shards.len(), 7);
    }
}

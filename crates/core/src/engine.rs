//! The GraphReduce runtime: Partition Engine + Data Movement Engine +
//! Compute Engine orchestration (Figures 8-12).
//!
//! Execution is Bulk-Synchronous across phases (Section 4.4): every
//! iteration runs Gather over all shards, then Apply, then
//! Scatter+FrontierActivate, with device barriers between stages. Within a
//! stage, shards are independent and pipeline across `K` CUDA streams
//! (copy/compute overlap, Section 5.1); the spray operation spreads each
//! shard's sub-array copies over dynamically cycled streams so issue
//! overheads and DMA latencies pipeline through Hyper-Q.
//!
//! *Results* are computed eagerly on the host with identical semantics
//! regardless of the optimization flags — the flags only change what the
//! virtual device copies and launches, which is exactly the paper's claim
//! (the optimizations are pure data-movement/scheduling transformations).

use gr_graph::{split_shard, Bitmap, GraphLayout, Shard};
use gr_observe::{Decision, MetricsRegistry, Observer, SpanEvent};
use gr_sim::{
    cpu_time, Allocation, CpuWork, DeviceFault, Gpu, HostConfig, KernelSpec, OpId, OutOfMemory,
    Platform, SimDuration, StreamId,
};

use crate::api::{GasProgram, InitialFrontier};
use crate::buffers::StagingBuffer;
use crate::checkpoint::Checkpoint;
use crate::options::{GatherMode, Options, StreamingMode};
use crate::phases::{activate_shard, apply_shard, gather_shard, scatter_shard, ShardWork};
use crate::recovery::{EngineError, RecoveryPolicy};
use crate::sizes::{PartitionPlan, SizeModel};
use crate::stats::{IterationStats, RunStats};

/// Iteration replays allowed before a persistent fault becomes
/// [`EngineError::Unrecoverable`] (guards against pathological hand-built
/// plans that fault the same op forever).
const REPLAY_CAP: u32 = 64;

/// A device operation that failed past its retry budget (or hit a lost
/// device), unwinding the current timeline emission for rollback handling.
struct Abort {
    op: &'static str,
    fault: DeviceFault,
}

/// Warm-start state for incremental (dynamic-graph) processing — the
/// paper's third future-work item. After mutating a graph (e.g. appending
/// edges and rebuilding the [`GraphLayout`]), a previous run's vertex
/// values can be carried over and only the vertices a mutation touched are
/// re-activated; monotone algorithms (CC, SSSP, BFS levels with care)
/// then converge in a handful of incremental iterations instead of a full
/// re-run. Mutable edge state restarts from `Default` (canonical edge ids
/// change when the layout is rebuilt).
pub struct WarmStart<P: GasProgram> {
    /// Vertex values from the previous run; padded with `init_vertex` for
    /// vertices the mutation added.
    pub vertex_values: Vec<P::VertexValue>,
    /// Vertices to seed the frontier with (typically the endpoints of
    /// inserted/removed edges).
    pub frontier: Vec<gr_graph::VertexId>,
}

/// Output of one GraphReduce run.
pub struct RunResult<P: GasProgram> {
    /// Final vertex values, indexed by vertex id.
    pub vertex_values: Vec<P::VertexValue>,
    /// Final mutable edge state, indexed by canonical edge id.
    pub edge_values: Vec<P::EdgeValue>,
    /// Everything the evaluation section measures.
    pub stats: RunStats,
}

/// The GraphReduce framework instance: one program bound to one graph on
/// one platform.
pub struct GraphReduce<'g, P: GasProgram> {
    program: P,
    layout: &'g GraphLayout,
    platform: Platform,
    opts: Options,
    observer: Observer,
}

impl<'g, P: GasProgram> GraphReduce<'g, P> {
    pub fn new(program: P, layout: &'g GraphLayout, platform: Platform, opts: Options) -> Self {
        GraphReduce {
            program,
            layout,
            platform,
            opts,
            observer: Observer::disabled(),
        }
    }

    /// Attach a [`gr_observe::Observer`]: the run emits per-shard GAS
    /// phase spans, iteration spans, shard-skip and phase-fusion/
    /// elimination decisions, device op spans, and per-iteration
    /// metrics snapshots into its sink. The default (no observer) costs
    /// one branch per would-be event.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// The byte model derived from the program's data types and phase set.
    pub fn size_model(&self) -> SizeModel {
        SizeModel {
            vertex_value: std::mem::size_of::<P::VertexValue>() as u64,
            gather: std::mem::size_of::<P::Gather>() as u64,
            edge_value: std::mem::size_of::<P::EdgeValue>() as u64,
            has_gather: self.program.has_gather(),
            has_scatter: self.program.has_scatter(),
        }
    }

    /// Execute to convergence; returns final state and statistics.
    pub fn run(&self) -> Result<RunResult<P>, EngineError> {
        self.run_inner(None)
    }

    /// Execute incrementally from a previous run's state (dynamic graphs).
    pub fn run_warm(&self, warm: WarmStart<P>) -> Result<RunResult<P>, EngineError> {
        self.run_inner(Some(warm))
    }

    fn run_inner(&self, warm: Option<WarmStart<P>>) -> Result<RunResult<P>, EngineError> {
        let sizes = self.size_model();
        let plan = crate::sizes::plan_partition_with(
            self.layout,
            &sizes,
            &self.platform.device,
            &self.platform.pcie,
            self.opts.concurrent_shards,
            self.opts.num_shards,
            &*self.opts.partition_logic,
        )?;
        Runner::new(
            &self.program,
            self.layout,
            &self.platform,
            &self.opts,
            sizes,
            plan,
            warm,
            self.observer.clone(),
        )?
        .run()
    }
}

/// One buffer of a shard copy: (bytes, trace label).
type Buf = (u64, &'static str);

/// A shard's fixed buffer list, precomputed once per run (satellite of the
/// sparse-kernels PR: the per-iteration `Vec<Buf>` rebuilds were pure
/// allocator churn). Stack-inline and `Copy` so the emit loops can grab a
/// shard's set without borrowing the `Runner`.
#[derive(Clone, Copy, Default)]
struct BufSet {
    n: usize,
    bufs: [Buf; 4],
}

impl BufSet {
    fn push(&mut self, b: Buf) {
        self.bufs[self.n] = b;
        self.n += 1;
    }

    fn as_slice(&self) -> &[Buf] {
        &self.bufs[..self.n]
    }
}

/// In-edge sub-arrays of a shard: source ids, static weights, mutable
/// edge values. `force` includes them even when the program has no gather
/// (the unoptimized mode's behaviour that phase elimination removes).
fn in_bufs_for(sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
    let mut set = BufSet::default();
    if !sizes.has_gather && !force {
        return set;
    }
    let e = sh.num_in_edges();
    set.push((e * 12, "in.topo"));
    set.push((e * (sizes.gather + 4), "in.update"));
    set.push((e * 16, "in.state"));
    if sizes.edge_value > 0 {
        set.push((e * sizes.edge_value, "in.value"));
    }
    set
}

/// Out-edge sub-arrays: destination ids always (FrontierActivate needs
/// the topology regardless — Section 5.3), canonical ids + mutable
/// values when scattering (or when `force`d by unoptimized mode).
fn out_bufs_for(sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
    let e = sh.num_out_edges();
    let mut set = BufSet::default();
    set.push((e * 12, "out.topo"));
    set.push((e * 8, "out.state"));
    if (sizes.has_scatter || force) && sizes.edge_value > 0 {
        set.push((e * sizes.edge_value, "out.value"));
    }
    set
}

struct Runner<'a, P: GasProgram> {
    program: &'a P,
    layout: &'a GraphLayout,
    opts: &'a Options,
    sizes: SizeModel,
    plan: PartitionPlan,
    gpu: Gpu,
    main_streams: Vec<StreamId>,
    spray_streams: Vec<StreamId>,
    spray_cursor: usize,
    // Device allocations held for the run (RAII keeps capacity accounted).
    // `None` only in governor whole-run host mode (nothing device-side).
    _static_alloc: Option<Allocation>,
    _shard_allocs: Vec<Allocation>,
    // Host master state.
    vertex_values: Vec<P::VertexValue>,
    edge_values: Vec<P::EdgeValue>,
    gather_temp: Vec<P::Gather>,
    frontier: Bitmap,
    changed: Bitmap,
    next_frontier: Bitmap,
    // Residency caching (in-GPU-memory mode).
    resident: bool,
    in_cached: Vec<bool>,
    out_cached: Vec<bool>,
    // Per-shard CTA imbalance factors (max/mean degree in the interval).
    skew_in: Vec<f64>,
    skew_out: Vec<f64>,
    // Per-shard buffer lists, computed once (the emit loops used to
    // rebuild these Vecs every shard every iteration).
    in_buf_sets: Vec<BufSet>,
    out_buf_sets: Vec<BufSet>,
    gather_temp_bufs: Vec<Buf>,
    edge_update_bufs: Vec<Buf>,
    apply_vertex_bufs: Vec<Buf>,
    out_dst_bufs: Vec<Buf>,
    frontier_bits_bufs: Vec<Buf>,
    // Out-of-host-core: graphs beyond host DRAM stream shards from
    // storage before they can cross PCIe.
    storage_read_secs_per_byte: Option<f64>,
    storage_latency: SimDuration,
    // Fault recovery: whether a fault plan is armed (gates per-iteration
    // checkpoints), and the degraded host-CPU mode entered after
    // permanent device loss.
    fault_active: bool,
    host: HostConfig,
    host_mode: bool,
    host_time: SimDuration,
    // Memory governor outcome (all-false/zero when unconstrained): shards
    // streamed in bounded chunks through the staging slot, shards degraded
    // to host execution, and the per-slot staging size chunks cut to.
    chunked: Vec<bool>,
    host_shards: Vec<bool>,
    any_host_shards: bool,
    staging_bytes: u64,
    // Engine-level metrics (skip counters, frontier occupancy) — the
    // single source RunStats' skip fields derive from.
    metrics: MetricsRegistry,
    observer: Observer,
    // Kernel launches awaiting their resolved virtual-time window
    // (emitted as engine-track spans after the stage synchronizes).
    pending_kernels: Vec<(OpId, &'static str, u32, u32)>,
    iterations: Vec<IterationStats>,
}

impl<'a, P: GasProgram> Runner<'a, P> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'a P,
        layout: &'a GraphLayout,
        platform: &Platform,
        opts: &'a Options,
        sizes: SizeModel,
        plan: PartitionPlan,
        warm: Option<WarmStart<P>>,
        observer: Observer,
    ) -> Result<Self, EngineError> {
        let mut gpu = Gpu::new(platform);
        gpu.set_observer(observer.clone());
        let fault_active = !opts.fault_plan.is_none();
        gpu.set_fault_plan(opts.fault_plan.clone());
        // Plan optimistically, govern at runtime: the partition plan was
        // sized for the nominal device; a memory cap shrinks the pool and
        // the governor degrades the plan until it fits (or errors).
        if let Some(cap) = opts.mem_cap {
            gpu.cap_memory(cap);
        }
        let mut metrics = MetricsRegistry::new();
        let mut plan = plan;
        let governed = govern_plan(
            &mut plan,
            &sizes,
            layout,
            &gpu,
            opts,
            &mut metrics,
            &observer,
        )?;
        let n = layout.num_vertices();
        let k = plan.concurrent as usize;

        // Streams before allocations: allocation-retry backoff stalls are
        // charged on a stream, so one must exist first.
        let main_streams: Vec<StreamId> = (0..k).map(|_| gpu.create_stream()).collect();
        let spray_streams: Vec<StreamId> = if opts.spray {
            (0..(opts.spray_width.max(1) as usize * k))
                .map(|_| gpu.create_stream())
                .collect()
        } else {
            Vec::new()
        };

        // Device allocations: static buffers, then either every shard
        // (resident mode) or K reusable streaming slots sized to the
        // governed budget. The governed plan guarantees these fit, but
        // injected allocation pressure — or a plan invalidated by a
        // shrunken device — surfaces as an [`EngineError`] instead of a
        // panic. Whole-run host mode allocates nothing.
        let s0 = main_streams[0];
        let resident = !governed.host_run && opts.cache_resident && plan.all_resident;
        let static_alloc = if governed.host_run {
            None
        } else {
            Some(alloc_retry(
                &mut gpu,
                s0,
                plan.static_bytes,
                &opts.recovery,
                &mut metrics,
                &observer,
            )?)
        };
        let shard_allocs: Vec<Allocation> = if governed.host_run {
            Vec::new()
        } else if resident {
            plan.shards
                .iter()
                .map(|s| {
                    alloc_retry(
                        &mut gpu,
                        s0,
                        sizes.shard_bytes(s),
                        &opts.recovery,
                        &mut metrics,
                        &observer,
                    )
                })
                .collect::<Result<_, _>>()?
        } else {
            (0..k)
                .map(|_| {
                    alloc_retry(
                        &mut gpu,
                        s0,
                        governed.slot_bytes,
                        &opts.recovery,
                        &mut metrics,
                        &observer,
                    )
                })
                .collect::<Result<_, _>>()?
        };

        let (vertex_values, frontier) = match warm {
            Some(w) => {
                let mut values = w.vertex_values;
                assert!(
                    values.len() <= n as usize,
                    "warm-start values exceed the vertex set"
                );
                for v in values.len() as u32..n {
                    values.push(program.init_vertex(v, layout.csr.degree(v) as u32));
                }
                let mut b = Bitmap::new(n);
                for v in w.frontier {
                    b.set(v);
                }
                (values, b)
            }
            None => {
                let values = (0..n)
                    .map(|v| program.init_vertex(v, layout.csr.degree(v) as u32))
                    .collect();
                let mut frontier = match program.initial_frontier() {
                    InitialFrontier::All => Bitmap::full(n),
                    InitialFrontier::Single(v) => {
                        let mut b = Bitmap::new(n);
                        b.set(v);
                        b
                    }
                };
                if n == 0 {
                    frontier = Bitmap::new(0);
                }
                (values, frontier)
            }
        };
        let edge_values = vec![P::EdgeValue::default(); layout.num_edges() as usize];
        let gather_temp = vec![program.gather_identity(); n as usize];

        // Out-of-host-core: if the full graph footprint exceeds host DRAM,
        // every shard fetch pays a storage read first (Section 8, future
        // work (2)).
        let host_footprint = gr_graph::in_memory_bytes(n as u64, layout.num_edges());
        let storage_read_secs_per_byte = (host_footprint > platform.host.mem_capacity)
            .then(|| 1.0 / (platform.storage.bandwidth_gbps * 1e9));
        let storage_latency = platform.storage.latency;

        let (skew_in, skew_out): (Vec<f64>, Vec<f64>) = plan
            .shards
            .iter()
            .map(|sh| {
                (
                    interval_skew(layout, sh, true),
                    interval_skew(layout, sh, false),
                )
            })
            .unzip();

        // Buffer lists are a pure function of the shard geometry and the
        // size model: compute them once. `force` mirrors which emit path
        // this run will take (fused passes force=false, unfused true).
        let force = !opts.phase_fusion;
        let in_buf_sets = plan
            .shards
            .iter()
            .map(|sh| in_bufs_for(&sizes, sh, force))
            .collect();
        let out_buf_sets = plan
            .shards
            .iter()
            .map(|sh| out_bufs_for(&sizes, sh, force))
            .collect();
        let gather_temp_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices() * sizes.gather, "gather.temp"))
            .collect();
        let edge_update_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_in_edges() * (sizes.gather + 4), "edge.update"))
            .collect();
        let apply_vertex_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices() * sizes.vertex_value, "apply.vertices"))
            .collect();
        let out_dst_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_out_edges() * 4, "out.dst"))
            .collect();
        let frontier_bits_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices().div_ceil(8), "frontier.bits"))
            .collect();

        let num_shards = plan.shards.len();
        Ok(Runner {
            program,
            layout,
            opts,
            sizes,
            plan,
            gpu,
            main_streams,
            spray_streams,
            spray_cursor: 0,
            _static_alloc: static_alloc,
            _shard_allocs: shard_allocs,
            vertex_values,
            edge_values,
            gather_temp,
            frontier,
            changed: Bitmap::new(n),
            next_frontier: Bitmap::new(n),
            resident,
            in_cached: vec![false; num_shards],
            out_cached: vec![false; num_shards],
            storage_read_secs_per_byte,
            storage_latency,
            fault_active,
            host: platform.host.clone(),
            host_mode: governed.host_run,
            host_time: SimDuration::ZERO,
            any_host_shards: governed.host_shards.iter().any(|&h| h),
            chunked: governed.chunked,
            host_shards: governed.host_shards,
            staging_bytes: governed.slot_bytes.max(1),
            skew_in,
            skew_out,
            in_buf_sets,
            out_buf_sets,
            gather_temp_bufs,
            edge_update_bufs,
            apply_vertex_bufs,
            out_dst_bufs,
            frontier_bits_bufs,
            metrics,
            observer,
            pending_kernels: Vec::new(),
            iterations: Vec::new(),
        })
    }

    /// Record the run's static optimization decisions (made once, from
    /// the program shape and options, not per iteration).
    fn emit_plan_decisions(&self) {
        if self.opts.phase_fusion {
            self.observer.decision(|| Decision::PhaseFusion {
                phases: "gatherMap+gatherReduce | scatter+frontierActivate",
                rationale: "intermediates (edge updates, gather temps) stay device-resident; \
                            scatter and activate share one out-edge copy",
            });
        }
        if !self.program.has_gather() {
            self.observer.decision(|| Decision::PhaseElimination {
                phase: "gather",
                rationale: "program defines no gather: in-edge sub-arrays never cross PCIe",
            });
        }
        if !self.program.has_scatter() {
            self.observer.decision(|| Decision::PhaseElimination {
                phase: "scatter",
                rationale: "program defines no scatter: out-edge values never move",
            });
        }
    }

    /// Launch a kernel (through the fault-retry path) and remember its op
    /// so the resolved window can be emitted as an engine-track span after
    /// the stage barrier.
    fn launch_tracked(
        &mut self,
        stream: StreamId,
        spec: &KernelSpec,
        iter: u32,
        shard: usize,
    ) -> Result<(), Abort> {
        let op = self.retry_loop(stream, spec.label, iter, |g| g.try_launch(stream, spec))?;
        if self.observer.is_enabled() {
            self.pending_kernels
                .push((op, spec.label, iter, shard as u32));
        }
        Ok(())
    }

    /// Run one device op through the recovery policy: each transient fault
    /// retries after an exponential-backoff stall (charged to `stream` as
    /// simulated time, logged as [`Decision::FaultRetry`]); exhausted
    /// retries and device loss unwind as [`Abort`] for rollback handling.
    /// With no fault plan armed the closure succeeds on the first call and
    /// this is exactly one extra branch.
    fn retry_loop<F>(
        &mut self,
        stream: StreamId,
        label: &'static str,
        iter: u32,
        mut op: F,
    ) -> Result<OpId, Abort>
    where
        F: FnMut(&mut Gpu) -> Result<OpId, DeviceFault>,
    {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.gpu) {
                Ok(id) => return Ok(id),
                Err(DeviceFault::Lost) => {
                    return Err(Abort {
                        op: label,
                        fault: DeviceFault::Lost,
                    })
                }
                Err(fault) => {
                    attempt += 1;
                    if attempt > self.opts.recovery.max_retries {
                        return Err(Abort { op: label, fault });
                    }
                    let backoff = self.opts.recovery.backoff(attempt);
                    self.gpu.stall(stream, backoff, "recovery.backoff");
                    self.metrics.inc("engine.fault_retries", 1);
                    let backoff_ns = backoff.as_nanos();
                    self.observer.decision(|| Decision::FaultRetry {
                        iteration: iter,
                        device: 0,
                        op: label,
                        fault: fault.name(),
                        attempt,
                        backoff_ns,
                    });
                }
            }
        }
    }

    /// Device barrier + emission of every pending kernel's span with
    /// its real virtual-time window (known only after the flush).
    fn sync_and_resolve(&mut self) {
        self.gpu.synchronize();
        for (op, label, iter, shard) in std::mem::take(&mut self.pending_kernels) {
            if let Some((start, finish)) = self.gpu.op_window(op) {
                self.observer.span(|| SpanEvent {
                    track: "engine",
                    lane: format!("shard {shard}"),
                    name: label.to_string(),
                    start_ns: start,
                    dur_ns: finish - start,
                    fields: vec![("iteration", iter.into()), ("shard", shard.into())],
                });
            }
        }
    }

    /// Current virtual time: device clock plus any degraded-mode host time.
    fn now_ns(&self) -> u64 {
        self.gpu.elapsed().as_nanos() + self.host_time.as_nanos()
    }

    fn run(mut self) -> Result<RunResult<P>, EngineError> {
        self.emit_plan_decisions();
        self.emit_init()?;
        let max_iter = self.program.max_iterations();
        let mut iter = 0u32;
        while iter < max_iter && self.frontier.count() > 0 {
            let iter_start_ns = self.now_ns();
            self.run_iteration(iter)?;
            let iter_end_ns = self.now_ns();
            let st = self.iterations.last().expect("pushed by compute_iteration");
            self.observer.span(|| SpanEvent {
                track: "engine",
                lane: "iterations".into(),
                name: format!("iteration {iter}"),
                start_ns: iter_start_ns,
                dur_ns: iter_end_ns - iter_start_ns,
                fields: vec![
                    ("iteration", iter.into()),
                    ("frontier_size", st.frontier_size.into()),
                    ("changed", st.changed.into()),
                    ("shards_processed", st.shards_processed.into()),
                    ("shards_skipped", st.shards_skipped.into()),
                ],
            });
            let gpu_metrics = self.gpu.metrics();
            self.observer
                .snapshot(&format!("iteration {iter}"), || gpu_metrics.snapshot());
            iter += 1;
        }
        self.emit_finalize()?;
        let gpu_metrics = self.gpu.metrics();
        self.observer.snapshot("run", || gpu_metrics.snapshot());
        let engine_metrics = &self.metrics;
        self.observer
            .snapshot("engine", || engine_metrics.snapshot());
        // Every transfer/time/skip field below reads the device and
        // engine metric registries — RunStats holds no counters of its
        // own.
        let gstats = self.gpu.stats();
        let stats = RunStats {
            algorithm: self.program.name(),
            iterations: iter,
            elapsed: gstats.elapsed + self.host_time,
            memcpy_time: gstats.memcpy_busy,
            kernel_time: gstats.kernel_busy,
            bytes_h2d: gstats.bytes_h2d,
            bytes_d2h: gstats.bytes_d2h,
            copy_ops: gstats.copy_ops,
            kernel_launches: gstats.kernel_launches,
            skipped_shard_copies: self.metrics.counter("engine.skipped_shard_copies"),
            skipped_kernel_launches: self.metrics.counter("engine.skipped_kernel_launches"),
            num_shards: self.plan.shards.len(),
            concurrent_shards: self.plan.concurrent,
            all_resident: self.resident,
            faults_injected: self.gpu.faults_injected(),
            recovered_retries: self.metrics.counter("engine.fault_retries"),
            rollbacks: self.metrics.counter("engine.rollbacks"),
            checkpoints: self.metrics.counter("engine.checkpoints"),
            host_fallback: self.host_mode,
            mem_pressure_events: self.metrics.counter("engine.mem_pressure"),
            shard_splits: self.metrics.counter("engine.shard_splits"),
            chunked_shards: self.metrics.counter("engine.chunked_shards"),
            chunked_copies: self.metrics.counter("engine.chunked_copies"),
            host_shards: self.metrics.counter("engine.host_shards"),
            mem_peak: self.gpu.memory().peak(),
            mem_min_headroom: self.gpu.memory().min_headroom(),
            per_iteration: self.iterations,
        };
        Ok(RunResult {
            vertex_values: self.vertex_values,
            edge_values: self.edge_values,
            stats,
        })
    }

    // ---------------- host-side computation (exact, BSP) ----------------

    fn compute_iteration(&mut self, iter: u32) -> Vec<ShardWork> {
        let frontier_size = self.frontier.count();
        self.changed.clear_all();
        self.next_frontier.clear_all();
        let num_shards = self.plan.shards.len();
        let mut work = vec![ShardWork::default(); num_shards];
        let mode = self.opts.host_kernels;
        // Shards are independent within a BSP stage: with host threads
        // available, gather/apply/activate fan out one task per shard
        // (the intra-shard kernels may split further). All merge steps
        // run in shard order, so results are bit-identical to serial.
        let across_shards = rayon::current_num_threads() > 1 && num_shards > 1;

        // Gather (all shards, before any apply — BSP).
        if self.program.has_gather() {
            if across_shards {
                let program = self.program;
                let layout = self.layout;
                let vertex_values = &self.vertex_values;
                let edge_values = &self.edge_values;
                let frontier = &self.frontier;
                let shards = &self.plan.shards;
                // Carve gather_temp into per-shard slices (intervals are
                // contiguous, ordered, disjoint).
                let mut slices: Vec<&mut [P::Gather]> = Vec::with_capacity(num_shards);
                let mut rest: &mut [P::Gather] = &mut self.gather_temp;
                let mut offset = 0usize;
                for sh in shards.iter() {
                    let lo = sh.interval.start as usize;
                    let hi = sh.interval.end as usize;
                    let (_, tail) = rest.split_at_mut(lo - offset);
                    let (mine, tail) = tail.split_at_mut(hi - lo);
                    slices.push(mine);
                    rest = tail;
                    offset = hi;
                }
                rayon::scope(|s| {
                    for ((sh, slice), w) in shards.iter().zip(slices).zip(work.iter_mut()) {
                        s.spawn(move |_| {
                            let (a, e) = gather_shard(
                                program,
                                layout,
                                sh,
                                vertex_values,
                                edge_values,
                                &layout.weights,
                                frontier,
                                slice,
                                mode,
                            );
                            w.active_vertices = a;
                            w.active_in_edges = e;
                        });
                    }
                });
            } else {
                for (i, sh) in self.plan.shards.iter().enumerate() {
                    let lo = sh.interval.start as usize;
                    let hi = sh.interval.end as usize;
                    let (a, e) = gather_shard(
                        self.program,
                        self.layout,
                        sh,
                        &self.vertex_values,
                        &self.edge_values,
                        &self.layout.weights,
                        &self.frontier,
                        &mut self.gather_temp[lo..hi],
                        mode,
                    );
                    work[i].active_vertices = a;
                    work[i].active_in_edges = e;
                }
            }
        } else {
            for (i, sh) in self.plan.shards.iter().enumerate() {
                work[i].active_vertices = self
                    .frontier
                    .count_range(sh.interval.start, sh.interval.end);
            }
        }

        // Apply.
        if across_shards {
            let program = self.program;
            let gather_temp = &self.gather_temp;
            let frontier = &self.frontier;
            let shards = &self.plan.shards;
            let mut slices: Vec<&mut [P::VertexValue]> = Vec::with_capacity(num_shards);
            let mut rest: &mut [P::VertexValue] = &mut self.vertex_values;
            let mut offset = 0usize;
            for sh in shards.iter() {
                let lo = sh.interval.start as usize;
                let hi = sh.interval.end as usize;
                let (_, tail) = rest.split_at_mut(lo - offset);
                let (mine, tail) = tail.split_at_mut(hi - lo);
                slices.push(mine);
                rest = tail;
                offset = hi;
            }
            let mut ids: Vec<Vec<u32>> = (0..num_shards).map(|_| Vec::new()).collect();
            rayon::scope(|s| {
                for ((sh, slice), out) in shards.iter().zip(slices).zip(ids.iter_mut()) {
                    s.spawn(move |_| {
                        let lo = sh.interval.start as usize;
                        let hi = sh.interval.end as usize;
                        *out = apply_shard(
                            program,
                            sh,
                            slice,
                            &gather_temp[lo..hi],
                            frontier,
                            iter,
                            mode,
                        );
                    });
                }
            });
            for (i, changed_ids) in ids.into_iter().enumerate() {
                work[i].changed_vertices = changed_ids.len() as u64;
                for v in changed_ids {
                    self.changed.set(v);
                }
            }
        } else {
            for (i, sh) in self.plan.shards.iter().enumerate() {
                let lo = sh.interval.start as usize;
                let hi = sh.interval.end as usize;
                let changed_ids = apply_shard(
                    self.program,
                    sh,
                    &mut self.vertex_values[lo..hi],
                    &self.gather_temp[lo..hi],
                    &self.frontier,
                    iter,
                    mode,
                );
                work[i].changed_vertices = changed_ids.len() as u64;
                for v in changed_ids {
                    self.changed.set(v);
                }
            }
        }

        // Scatter (only when defined). Serial across shards — the
        // canonical edge ids of different shards interleave in
        // `edge_values`, so there is no slice split; each shard's dense
        // path parallelizes internally instead.
        if self.program.has_scatter() {
            for sh in &self.plan.shards {
                scatter_shard(
                    self.program,
                    self.layout,
                    sh,
                    &self.vertex_values,
                    &mut self.edge_values,
                    &self.changed,
                    mode,
                );
            }
        }

        // FrontierActivate (always; framework-generated). Across shards,
        // each task marks a private bitmap; merging in shard order keeps
        // the activation count identical to the serial pass.
        let mut activated_total = 0;
        if across_shards {
            let layout = self.layout;
            let changed = &self.changed;
            let shards = &self.plan.shards;
            let n = self.next_frontier.len();
            let mut locals: Vec<(u64, Bitmap)> =
                (0..num_shards).map(|_| (0, Bitmap::new(n))).collect();
            rayon::scope(|s| {
                for (sh, slot) in shards.iter().zip(locals.iter_mut()) {
                    s.spawn(move |_| {
                        let (walked, _) = activate_shard(layout, sh, changed, &mut slot.1, mode);
                        slot.0 = walked;
                    });
                }
            });
            for (i, (walked, local)) in locals.iter().enumerate() {
                work[i].out_edges_of_changed = *walked;
                let before = self.next_frontier.count();
                self.next_frontier.or_assign(local);
                activated_total += self.next_frontier.count() - before;
            }
        } else {
            for (i, sh) in self.plan.shards.iter().enumerate() {
                let (walked, activated) = activate_shard(
                    self.layout,
                    sh,
                    &self.changed,
                    &mut self.next_frontier,
                    mode,
                );
                work[i].out_edges_of_changed = walked;
                activated_total += activated;
            }
        }

        let processed = if self.opts.frontier_management {
            // Log one skip decision per inactive shard: the engine
            // inspected the shard's slice of the frontier bitmap and
            // found no active vertex, so the whole shard is elided
            // this iteration. One decision == one shard counted in
            // `shards_skipped`.
            for (i, sh) in self.plan.shards.iter().enumerate() {
                if !work[i].is_active() {
                    let active = work[i].active_vertices;
                    self.observer.decision(|| Decision::ShardSkip {
                        iteration: iter,
                        shard: i as u32,
                        interval_bits: sh.interval.len() as u64,
                        active_bits: active,
                    });
                }
            }
            work.iter().filter(|w| w.is_active()).count() as u32
        } else {
            num_shards as u32
        };
        self.metrics.observe("engine.frontier_size", frontier_size);
        self.metrics
            .observe("engine.active_shards", processed as u64);
        self.iterations.push(IterationStats {
            frontier_size,
            gathered_edges: work.iter().map(|w| w.active_in_edges).sum(),
            changed: self.changed.count(),
            activated: activated_total,
            shards_processed: processed,
            shards_skipped: num_shards as u32 - processed,
        });
        work
    }

    fn finish_iteration(&mut self, _work: &[ShardWork]) {
        std::mem::swap(&mut self.frontier, &mut self.next_frontier);
    }

    // ---------------- checkpoint / rollback / degraded mode ----------------

    /// One BSP iteration with fault recovery: checkpoint (only when a
    /// fault plan is armed), compute exact results on the host, emit the
    /// device timeline, and on a persistent fault restore the checkpoint
    /// and replay. The fault plan's monotone per-op counters guarantee a
    /// finite plan eventually stops faulting the replayed ops.
    fn run_iteration(&mut self, iter: u32) -> Result<(), EngineError> {
        if self.host_mode {
            return self.host_iteration(iter);
        }
        let ckpt = self.fault_active.then(|| self.take_checkpoint());
        let mut replays = 0u32;
        loop {
            let work = self.compute_iteration(iter);
            let emitted = if self.opts.phase_fusion {
                self.emit_fused(iter, &work)
            } else {
                self.emit_unfused(iter, &work)
            };
            match emitted {
                Ok(()) => {
                    self.charge_host_shards(&work);
                    self.finish_iteration(&work);
                    return Ok(());
                }
                Err(a) => {
                    replays += 1;
                    self.handle_abort(a, iter, replays)?;
                    let c = ckpt
                        .as_ref()
                        .expect("device faults require an armed fault plan");
                    self.restore(c);
                    if self.host_mode {
                        return self.host_iteration(iter);
                    }
                }
            }
        }
    }

    fn take_checkpoint(&mut self) -> Checkpoint<P> {
        self.metrics.inc("engine.checkpoints", 1);
        Checkpoint {
            vertex_values: self.vertex_values.clone(),
            edge_values: self.edge_values.clone(),
            gather_temp: self.gather_temp.clone(),
            frontier: self.frontier.clone(),
            changed: self.changed.clone(),
            next_frontier: self.next_frontier.clone(),
            iterations_len: self.iterations.len(),
        }
    }

    fn restore(&mut self, c: &Checkpoint<P>) {
        self.vertex_values.clone_from(&c.vertex_values);
        self.edge_values.clone_from(&c.edge_values);
        self.gather_temp.clone_from(&c.gather_temp);
        self.frontier = c.frontier.clone();
        self.changed = c.changed.clone();
        self.next_frontier = c.next_frontier.clone();
        self.iterations.truncate(c.iterations_len);
        // The faulted attempt may have moved only part of a shard: drop
        // all residency claims so the replay re-copies what it touches.
        self.in_cached.fill(false);
        self.out_cached.fill(false);
    }

    /// Central abort handling: device loss switches to host fallback (or
    /// fails the run when the policy forbids it); a persistent transient
    /// fault logs a [`Decision::Rollback`] so the caller replays from its
    /// checkpoint, bounded by [`REPLAY_CAP`].
    fn handle_abort(&mut self, a: Abort, iter: u32, replays: u32) -> Result<(), EngineError> {
        // Settle whatever the device finished before the fault; the time
        // the doomed attempt consumed stays on the clock — that work (and
        // its replay) is exactly what the counters record.
        self.sync_and_resolve();
        match a.fault {
            DeviceFault::Lost => {
                if !self.opts.recovery.host_fallback {
                    return Err(EngineError::DeviceLost);
                }
                self.metrics.inc("engine.host_fallback", 1);
                self.observer.decision(|| Decision::HostFallback {
                    iteration: iter,
                    device: 0,
                    rationale: "device lost: resuming on host CPU from last checkpoint",
                });
                self.host_mode = true;
                Ok(())
            }
            fault => {
                if replays > REPLAY_CAP {
                    return Err(EngineError::Unrecoverable { op: a.op });
                }
                self.metrics.inc("engine.rollbacks", 1);
                let name = fault.name();
                self.observer.decision(|| Decision::Rollback {
                    iteration: iter,
                    device: 0,
                    op: a.op,
                    fault: name,
                });
                Ok(())
            }
        }
    }

    /// Governor-degraded shards: their slice of the iteration's work is
    /// charged on the host CPU with the same roofline model as full host
    /// fallback, once per *successful* iteration (replays re-charge the
    /// device work they redo, not the host's). Results are unaffected —
    /// the host computes every shard's results regardless.
    fn charge_host_shards(&mut self, work: &[ShardWork]) {
        if !self.any_host_shards {
            return;
        }
        let mut edges = 0u64;
        let mut vertices = 0u64;
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                edges += w.active_in_edges + w.out_edges_of_changed;
                vertices += w.active_vertices + w.changed_vertices;
            }
        }
        if vertices + edges == 0 {
            return;
        }
        let cw = CpuWork::new(
            "host.shard",
            vertices + edges,
            8.0,
            edges * 16 + vertices * (self.sizes.vertex_value + self.sizes.gather),
            edges,
        );
        self.host_time += self.host.pass_overhead + cpu_time(&self.host, self.host.cores, &cw);
    }

    /// Degraded mode after device loss: the iteration both computes *and
    /// is charged* on the host CPU, with the same roofline model the CPU
    /// baseline engines use. Results stay bit-identical — the host was
    /// computing them all along.
    fn host_iteration(&mut self, iter: u32) -> Result<(), EngineError> {
        let work = self.compute_iteration(iter);
        let edges: u64 = work
            .iter()
            .map(|w| w.active_in_edges + w.out_edges_of_changed)
            .sum();
        let vertices: u64 = work
            .iter()
            .map(|w| w.active_vertices + w.changed_vertices)
            .sum();
        let cw = CpuWork::new(
            "host.fallback",
            vertices + edges,
            8.0,
            edges * 16 + vertices * (self.sizes.vertex_value + self.sizes.gather),
            edges,
        );
        self.host_time += self.host.pass_overhead + cpu_time(&self.host, self.host.cores, &cw);
        self.finish_iteration(&work);
        Ok(())
    }

    // ---------------- device timeline emission ----------------

    fn emit_init(&mut self) -> Result<(), EngineError> {
        // Governor whole-run host mode: nothing lives on the device, so
        // there is nothing to initialize (mirrors emit_finalize).
        if self.host_mode {
            return Ok(());
        }
        let mut replays = 0u32;
        loop {
            match self.try_emit_init() {
                Ok(()) => return Ok(()),
                Err(a) => {
                    // Nothing to roll back before iteration 0: the initial
                    // host state *is* the checkpoint.
                    replays += 1;
                    self.handle_abort(a, 0, replays)?;
                    if self.host_mode {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn try_emit_init(&mut self) -> Result<(), Abort> {
        let s = self.main_streams[0];
        let vbytes = self.layout.num_vertices() as u64 * self.sizes.vertex_value;
        self.retry_loop(s, "init.vertices", 0, |g| {
            g.try_h2d(s, vbytes, "init.vertices")
        })?;
        // Gather-temp and frontier bitmaps are initialized on-device.
        let spec = KernelSpec::balanced(
            "init.memset",
            self.layout.num_vertices() as u64,
            1.0,
            self.plan.static_bytes,
            0,
        );
        self.retry_loop(s, "init.memset", 0, |g| g.try_launch(s, &spec))?;
        self.gpu.synchronize();
        Ok(())
    }

    fn emit_finalize(&mut self) -> Result<(), EngineError> {
        // After host fallback the results are host-resident already (and
        // the device is gone): nothing to download.
        if self.host_mode {
            return Ok(());
        }
        let iter = self.iterations.len() as u32;
        let mut replays = 0u32;
        loop {
            match self.try_emit_finalize(iter) {
                Ok(()) => return Ok(()),
                Err(a) => {
                    replays += 1;
                    self.handle_abort(a, iter, replays)?;
                    if self.host_mode {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn try_emit_finalize(&mut self, iter: u32) -> Result<(), Abort> {
        let s = self.main_streams[0];
        let vbytes = self.layout.num_vertices() as u64 * self.sizes.vertex_value;
        self.retry_loop(s, "final.vertices", iter, |g| {
            g.try_d2h(s, vbytes, "final.vertices")
        })?;
        if self.program.has_scatter() {
            let ebytes = self.layout.num_edges() * self.sizes.edge_value;
            self.retry_loop(s, "final.edges", iter, |g| {
                g.try_d2h(s, ebytes, "final.edges")
            })?;
        }
        self.gpu.synchronize();
        Ok(())
    }

    /// Copy a shard's buffers host→device on (or sprayed around) `stream`,
    /// each copy routed through the fault-retry path. When the graph
    /// exceeds host memory, the shard is first read from storage into the
    /// host's streaming window. Governor-chunked shards stream each
    /// sub-array in bounded pieces through the reusable staging slot
    /// instead of landing whole (and never spray — the slot is the
    /// contention point).
    fn copy_in(
        &mut self,
        shard: usize,
        stream: StreamId,
        bufs: &[Buf],
        iter: u32,
    ) -> Result<(), Abort> {
        if bufs.is_empty() {
            return Ok(());
        }
        if let Some(per_byte) = self.storage_read_secs_per_byte {
            let bytes: u64 = bufs.iter().map(|b| b.0).sum();
            let dur =
                self.storage_latency + gr_sim::SimDuration::from_secs_f64(bytes as f64 * per_byte);
            self.gpu.stall(stream, dur, "ssd.read");
        }
        if self.chunked[shard] {
            for &(bytes, label) in bufs {
                let mut left = bytes;
                while left > 0 {
                    let b = self.staging_bytes.min(left);
                    left -= b;
                    self.retry_loop(stream, label, iter, |g| g.try_h2d(stream, b, label))?;
                    self.metrics.inc("engine.chunked_copies", 1);
                }
            }
            return Ok(());
        }
        if self.opts.streaming_mode == StreamingMode::ZeroCopySequential {
            // Zero-copy: the consuming kernels stream the buffers over
            // PCIe directly; the link is occupied for the access volume
            // but no staging DMA or per-copy latency is paid. GR's sorted
            // shard layout makes every streamed buffer sequential, so the
            // pinned-sequential rate applies (Figure 4's best case).
            for &(bytes, label) in bufs {
                if bytes > 0 {
                    self.retry_loop(stream, label, iter, |g| {
                        g.try_h2d_zero_copy(stream, bytes, label)
                    })?;
                }
            }
            return Ok(());
        }
        if self.opts.spray && !self.spray_streams.is_empty() {
            // Spray: split every sub-array over dynamically cycled streams;
            // the consuming stream waits on each piece's event.
            let chunks = (self.opts.spray_width.max(1) as usize / bufs.len()).max(1);
            for &(bytes, label) in bufs {
                if bytes == 0 {
                    continue;
                }
                let per = bytes.div_ceil(chunks as u64);
                let mut left = bytes;
                while left > 0 {
                    let b = per.min(left);
                    left -= b;
                    let ss = self.spray_streams[self.spray_cursor % self.spray_streams.len()];
                    self.spray_cursor += 1;
                    self.retry_loop(ss, label, iter, |g| g.try_h2d(ss, b, label))?;
                    let ev = self.gpu.record_event(ss);
                    self.gpu.wait_event(stream, ev);
                }
            }
        } else {
            for &(bytes, label) in bufs {
                if bytes > 0 {
                    self.retry_loop(stream, label, iter, |g| g.try_h2d(stream, bytes, label))?;
                }
            }
        }
        Ok(())
    }

    /// Copy a shard's buffers device→host after the work on `stream`,
    /// chunked through the staging slot for governor-chunked shards.
    fn copy_out(
        &mut self,
        shard: usize,
        stream: StreamId,
        bufs: &[Buf],
        iter: u32,
    ) -> Result<(), Abort> {
        if self.chunked[shard] {
            for &(bytes, label) in bufs {
                let mut left = bytes;
                while left > 0 {
                    let b = self.staging_bytes.min(left);
                    left -= b;
                    self.retry_loop(stream, label, iter, |g| g.try_d2h(stream, b, label))?;
                    self.metrics.inc("engine.chunked_copies", 1);
                }
            }
            return Ok(());
        }
        for &(bytes, label) in bufs {
            if bytes > 0 {
                self.retry_loop(stream, label, iter, |g| g.try_d2h(stream, bytes, label))?;
            }
        }
        Ok(())
    }

    /// The (map, optional reduce) kernel pair of the gather phase. A fixed
    /// pair instead of a `Vec` — this runs per shard per iteration and
    /// used to allocate every time.
    fn gather_specs(&self, i: usize, w: &ShardWork) -> (KernelSpec, Option<KernelSpec>) {
        let ie = self.sizes.in_edge_bytes();
        let g = self.sizes.gather;
        let cta = self.opts.cta_load_balance;
        match self.opts.gather_mode {
            GatherMode::Hybrid => (
                KernelSpec::balanced(
                    "gatherMap",
                    w.active_in_edges,
                    2.0,
                    w.active_in_edges * (ie + g),
                    w.active_in_edges,
                ),
                Some(
                    KernelSpec::balanced(
                        "gatherReduce",
                        w.active_vertices,
                        1.0,
                        w.active_in_edges * g + w.active_vertices * g,
                        0,
                    )
                    .with_imbalance(if cta { 1.0 } else { self.skew_in[i] }),
                ),
            ),
            GatherMode::VertexCentric => {
                let avg = if w.active_vertices > 0 {
                    w.active_in_edges as f64 / w.active_vertices as f64
                } else {
                    0.0
                };
                (
                    KernelSpec::balanced(
                        "gatherVertexCentric",
                        w.active_vertices,
                        2.0 * avg.max(1.0),
                        w.active_in_edges * (ie + g),
                        w.active_in_edges,
                    )
                    .with_imbalance(self.skew_in[i]),
                    None,
                )
            }
            GatherMode::EdgeCentricAtomic => (
                KernelSpec::balanced(
                    "gatherEdgeAtomic",
                    w.active_in_edges,
                    2.0,
                    w.active_in_edges * ie,
                    2 * w.active_in_edges,
                ),
                None,
            ),
        }
    }

    fn apply_spec(&self, w: &ShardWork) -> KernelSpec {
        KernelSpec::balanced(
            "apply",
            w.active_vertices,
            4.0,
            w.active_vertices * (self.sizes.vertex_value + self.sizes.gather),
            0,
        )
    }

    fn scatter_spec(&self, i: usize, w: &ShardWork) -> KernelSpec {
        KernelSpec::balanced(
            "scatter",
            w.out_edges_of_changed,
            1.0,
            w.out_edges_of_changed * (8 + self.sizes.edge_value),
            w.changed_vertices,
        )
        .with_imbalance(if self.opts.cta_load_balance {
            1.0
        } else {
            self.skew_out[i]
        })
    }

    fn activate_spec(&self, i: usize, w: &ShardWork) -> KernelSpec {
        KernelSpec::balanced(
            "frontierActivate",
            w.out_edges_of_changed,
            1.0,
            w.out_edges_of_changed * 4,
            w.out_edges_of_changed,
        )
        .with_imbalance(if self.opts.cta_load_balance {
            1.0
        } else {
            self.skew_out[i]
        })
    }

    fn stream_for(&self, i: usize) -> StreamId {
        if self.opts.async_streams {
            self.main_streams[i % self.main_streams.len()]
        } else {
            self.main_streams[0]
        }
    }

    /// Optimized pipeline: fusion + elimination collapse each iteration
    /// into (at most) a gather stage, an apply stage, and a
    /// scatter+activate stage, each copying a shard's data once.
    fn emit_fused(&mut self, iter: u32, work: &[ShardWork]) -> Result<(), Abort> {
        // Stage A: gather (eliminated entirely for gather-less programs —
        // no in-edge movement, no kernels).
        if self.program.has_gather() {
            for (i, w) in work.iter().enumerate() {
                if self.host_shards[i] {
                    continue; // computed (and charged) on the host CPU
                }
                if self.opts.frontier_management && !w.is_active() {
                    if !self.in_cached[i] {
                        self.metrics.inc("engine.skipped_shard_copies", 1);
                    }
                    self.metrics.inc("engine.skipped_kernel_launches", 2);
                    continue;
                }
                let stream = self.stream_for(i);
                if !self.in_cached[i] {
                    let bufs = self.in_buf_sets[i];
                    self.copy_in(i, stream, bufs.as_slice(), iter)?;
                    if self.resident {
                        self.in_cached[i] = true;
                    }
                }
                let (map, reduce) = self.gather_specs(i, w);
                self.launch_tracked(stream, &map, iter, i)?;
                if let Some(spec) = reduce {
                    self.launch_tracked(stream, &spec, iter, i)?;
                }
            }
            self.sync_and_resolve();
        }

        // Stage B: apply (fused with gather's residency: temps never move).
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if self.opts.frontier_management && !w.is_active() {
                self.metrics.inc("engine.skipped_kernel_launches", 1);
                continue;
            }
            let stream = self.stream_for(i);
            let spec = self.apply_spec(w);
            self.launch_tracked(stream, &spec, iter, i)?;
        }
        self.sync_and_resolve();

        // Stage C: scatter + FrontierActivate share one out-edge copy.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if self.opts.frontier_management && w.out_edges_of_changed == 0 {
                if !self.out_cached[i] {
                    self.metrics.inc("engine.skipped_shard_copies", 1);
                }
                self.metrics.inc(
                    "engine.skipped_kernel_launches",
                    if self.program.has_scatter() { 2 } else { 1 },
                );
                continue;
            }
            let stream = self.stream_for(i);
            if !self.out_cached[i] {
                let bufs = self.out_buf_sets[i];
                self.copy_in(i, stream, bufs.as_slice(), iter)?;
                if self.resident {
                    self.out_cached[i] = true;
                }
            }
            if self.program.has_scatter() {
                let spec = self.scatter_spec(i, w);
                self.launch_tracked(stream, &spec, iter, i)?;
            }
            let spec = self.activate_spec(i, w);
            self.launch_tracked(stream, &spec, iter, i)?;
            // Copy-outs: mutated edge values (unless resident — they are
            // fetched once at finalize) and the tiny frontier bitmap.
            let bits = self.frontier_bits_bufs[i];
            if self.program.has_scatter() && !self.resident {
                let vals = (
                    w.out_edges_of_changed * self.sizes.edge_value,
                    "out.value.d2h",
                );
                self.copy_out(i, stream, &[vals, bits], iter)?;
            } else {
                self.copy_out(i, stream, &[bits], iter)?;
            }
        }
        self.sync_and_resolve();
        Ok(())
    }

    /// Unoptimized mode: five separate phases, each moving the shard data
    /// it touches in *and* out, for every shard, every iteration — the
    /// Figure 15 baseline.
    fn emit_unfused(&mut self, iter: u32, work: &[ShardWork]) -> Result<(), Abort> {
        let has_gather = self.program.has_gather();
        let has_scatter = self.program.has_scatter();
        let skip = |this: &Self, w: &ShardWork| this.opts.frontier_management && !w.is_active();

        // Phase 1: gatherMap — full in-edge sub-arrays in (even for
        // gather-less programs: this is exactly the movement phase
        // elimination removes), per-edge update array out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let bufs = self.in_buf_sets[i];
            self.copy_in(i, stream, bufs.as_slice(), iter)?;
            if has_gather {
                let (map, _) = self.gather_specs(i, w);
                self.launch_tracked(stream, &map, iter, i)?;
            }
            let upd = self.edge_update_bufs[i];
            self.copy_out(i, stream, &[upd], iter)?;
        }
        self.sync_and_resolve();

        // Phase 2: gatherReduce — the per-edge update array comes back in,
        // reduced per-vertex temps go out. Fusion makes both moves vanish
        // (the array never leaves the device between the two kernels).
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let upd = self.edge_update_bufs[i];
            self.copy_in(i, stream, &[upd], iter)?;
            if has_gather {
                let (_, reduce) = self.gather_specs(i, w);
                if let Some(reduce) = reduce {
                    self.launch_tracked(stream, &reduce, iter, i)?;
                }
            }
            let t = self.gather_temp_bufs[i];
            self.copy_out(i, stream, &[t], iter)?;
        }
        self.sync_and_resolve();

        // Phase 3: apply — temps + vertex interval in, vertex interval out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let vbuf = self.apply_vertex_bufs[i];
            let t = self.gather_temp_bufs[i];
            self.copy_in(i, stream, &[t, vbuf], iter)?;
            let spec = self.apply_spec(w);
            self.launch_tracked(stream, &spec, iter, i)?;
            self.copy_out(i, stream, &[vbuf], iter)?;
        }
        self.sync_and_resolve();

        // Phase 4: scatter — full out-edge arrays in, values out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let bufs = self.out_buf_sets[i];
            self.copy_in(i, stream, bufs.as_slice(), iter)?;
            if has_scatter {
                let spec = self.scatter_spec(i, w);
                self.launch_tracked(stream, &spec, iter, i)?;
                let vals: Buf = (
                    self.plan.shards[i].num_out_edges() * self.sizes.edge_value,
                    "out.value.d2h",
                );
                self.copy_out(i, stream, &[vals], iter)?;
            }
        }
        self.sync_and_resolve();

        // Phase 5: FrontierActivate — out-edge topology in (again), bits out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let dst = self.out_dst_bufs[i];
            self.copy_in(i, stream, &[dst], iter)?;
            let spec = self.activate_spec(i, w);
            self.launch_tracked(stream, &spec, iter, i)?;
            let bits = self.frontier_bits_bufs[i];
            self.copy_out(i, stream, &[bits], iter)?;
        }
        self.sync_and_resolve();
        Ok(())
    }

    /// One skipped phase of the unfused pipeline: one shard copy and one
    /// kernel launch that never happened.
    fn skip_phase(&mut self) {
        self.metrics.inc("engine.skipped_shard_copies", 1);
        self.metrics.inc("engine.skipped_kernel_launches", 1);
    }
}

/// What the memory governor decided for this run. All-default when the
/// device is unconstrained: the governor makes no decisions and the run
/// is byte-identical to an ungoverned one.
struct Governed {
    /// Rung 6: even per-shard degradation cannot fit the cap — the whole
    /// run executes on the host CPU and nothing is allocated on-device.
    host_run: bool,
    /// Per-slot streaming allocation size (== `plan.max_shard_bytes`
    /// unless chunking shrank it to the governed budget).
    slot_bytes: u64,
    /// Shards streamed in bounded chunks through the staging slot.
    chunked: Vec<bool>,
    /// Shards degraded to host-CPU execution.
    host_shards: Vec<bool>,
}

/// The device-memory governor: degrade the optimistic partition plan until
/// it fits the (possibly capped) device pool, escalating through
///
/// 1. drop residency (stream instead of caching every shard),
/// 2. reduce concurrency `K`,
/// 3. adaptively split oversized shards ([`split_shard`]),
/// 4. chunk transfers of unsplittable shards through a bounded staging
///    slot ([`StagingBuffer`]),
/// 5. per-shard host fallback,
/// 6. whole-run host execution,
///
/// and surfacing [`EngineError::Alloc`] only when the recovery policy
/// forbids host fallback at a terminal rung. Every degradation emits
/// exactly one decision ([`Decision::MemoryPressure`],
/// [`Decision::ShardSplit`], [`Decision::ChunkedXfer`]) and bumps the
/// matching `engine.*` counter; with no `mem_cap` set this is a single
/// branch and zero decisions.
fn govern_plan(
    plan: &mut PartitionPlan,
    sizes: &SizeModel,
    layout: &GraphLayout,
    gpu: &Gpu,
    opts: &Options,
    metrics: &mut MetricsRegistry,
    observer: &Observer,
) -> Result<Governed, EngineError> {
    let num_shards = plan.shards.len();
    let mut out = Governed {
        host_run: false,
        slot_bytes: plan.max_shard_bytes,
        chunked: vec![false; num_shards],
        host_shards: vec![false; num_shards],
    };
    if opts.mem_cap.is_none() {
        return Ok(out);
    }
    let capacity = gpu.memory().capacity();
    let oom = |requested: u64, available: u64| OutOfMemory {
        requested,
        available,
        capacity,
    };

    // Rung 6 first (it gates everything): the static buffers alone exceed
    // the cap, so no device execution is possible at all.
    if plan.static_bytes > capacity {
        if !opts.recovery.host_fallback {
            return Err(EngineError::Alloc(oom(plan.static_bytes, capacity)));
        }
        metrics.inc("engine.mem_pressure", 1);
        let requested = plan.static_bytes;
        observer.decision(|| Decision::MemoryPressure {
            device: 0,
            requested,
            available: capacity,
            capacity,
            response: "host-run",
            scope: "run",
        });
        out.host_run = true;
        return Ok(out);
    }
    let budget = capacity - plan.static_bytes;

    // Rung 1: residency. Caching every shard needs the whole streaming
    // working set on-device; under pressure, stream instead.
    if opts.cache_resident && plan.all_resident {
        let total: u64 = plan.shards.iter().map(|s| sizes.shard_bytes(s)).sum();
        if total > budget {
            metrics.inc("engine.mem_pressure", 1);
            observer.decision(|| Decision::MemoryPressure {
                device: 0,
                requested: total,
                available: budget,
                capacity,
                response: "stream",
                scope: "plan",
            });
            plan.all_resident = false;
        }
    }

    // Rung 2: concurrency. K slots of the largest shard must fit the
    // streaming budget (Equation (1) against the governed capacity).
    let k0 = plan.concurrent.max(1);
    let mut k = k0;
    while k > 1 && k as u64 * plan.max_shard_bytes > budget {
        k -= 1;
    }
    if k < k0 {
        metrics.inc("engine.mem_pressure", 1);
        let requested = k0 as u64 * plan.max_shard_bytes;
        observer.decision(|| Decision::MemoryPressure {
            device: 0,
            requested,
            available: budget,
            capacity,
            response: "reduce-concurrency",
            scope: "plan",
        });
        plan.concurrent = k;
    }
    let slot_budget = (budget / plan.concurrent.max(1) as u64).max(1);

    // Rung 3: adaptive shard splitting. Repeatedly split the largest
    // over-budget shard at its edge-mass midpoint; sub-shards execute
    // sequentially through the same slots with the same merged frontier
    // accounting, so results are bit-identical. Stops when nothing
    // over-budget can shrink further (a hub vertex's own edge lists).
    let mut split_any = false;
    while let Some((idx, bytes)) = plan
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| (i, sizes.shard_bytes(s)))
        .filter(|&(_, b)| b > slot_budget)
        .max_by_key(|&(_, b)| b)
    {
        let shard = plan.shards[idx].clone();
        let Some((left, right)) = split_shard(layout, &shard) else {
            break;
        };
        let worst = sizes.shard_bytes(&left).max(sizes.shard_bytes(&right));
        if worst >= bytes {
            // Degenerate split (all mass on one side): no progress.
            break;
        }
        metrics.inc("engine.shard_splits", 1);
        let vertices = shard.num_vertices();
        observer.decision(|| Decision::ShardSplit {
            shard: idx as u32,
            vertices,
            bytes,
        });
        plan.shards.splice(idx..=idx, [left, right]);
        split_any = true;
    }
    if split_any {
        for (i, sh) in plan.shards.iter_mut().enumerate() {
            sh.id = i;
        }
        plan.max_shard_bytes = plan
            .shards
            .iter()
            .map(|s| sizes.shard_bytes(s))
            .max()
            .unwrap_or(0);
        out.chunked = vec![false; plan.shards.len()];
        out.host_shards = vec![false; plan.shards.len()];
    }
    out.slot_bytes = plan.max_shard_bytes.min(slot_budget).max(1);

    // Rungs 4-5: shards that still exceed the slot stream through the
    // bounded staging slot in chunks — or, when even chunking is
    // unreasonable, degrade to host-CPU execution for that shard alone.
    if plan.max_shard_bytes > slot_budget {
        let staging = StagingBuffer::new(slot_budget);
        for (i, sh) in plan.shards.iter().enumerate() {
            let bytes = sizes.shard_bytes(sh);
            if bytes <= slot_budget {
                continue;
            }
            if staging.can_stage(bytes) {
                metrics.inc("engine.chunked_shards", 1);
                let chunks = staging.chunks_for(bytes) as u32;
                observer.decision(|| Decision::ChunkedXfer {
                    shard: i as u32,
                    shard_bytes: bytes,
                    chunk_bytes: slot_budget,
                    chunks,
                });
                out.chunked[i] = true;
            } else {
                if !opts.recovery.host_fallback {
                    return Err(EngineError::Alloc(oom(bytes, slot_budget)));
                }
                metrics.inc("engine.mem_pressure", 1);
                metrics.inc("engine.host_shards", 1);
                observer.decision(|| Decision::MemoryPressure {
                    device: 0,
                    requested: bytes,
                    available: slot_budget,
                    capacity,
                    response: "host-shard",
                    scope: "shard",
                });
                out.host_shards[i] = true;
            }
        }
    }
    Ok(out)
}

/// Allocate device memory through the recovery policy. Injected
/// allocation pressure backs off (charged as simulated time on `stream`)
/// and retries; a *real* shortfall — the request exceeds what the pool
/// can ever grant — will never succeed on retry and surfaces
/// [`EngineError::Alloc`] immediately instead of burning the budget.
fn alloc_retry(
    gpu: &mut Gpu,
    stream: StreamId,
    bytes: u64,
    recovery: &RecoveryPolicy,
    metrics: &mut MetricsRegistry,
    observer: &Observer,
) -> Result<Allocation, EngineError> {
    let mut attempt = 0u32;
    loop {
        match gpu.try_alloc(bytes) {
            Ok(a) => return Ok(a),
            Err(oom) => {
                // Injected pressure synthesizes `available: 0` while the
                // real pool still has room; when the request genuinely
                // exceeds the pool's free bytes, no amount of backoff can
                // help — escalate immediately instead of spinning through
                // the retry budget.
                if bytes > gpu.memory().available() {
                    return Err(EngineError::Alloc(oom));
                }
                attempt += 1;
                if attempt > recovery.max_retries {
                    return Err(EngineError::Alloc(oom));
                }
                let backoff = recovery.backoff(attempt);
                gpu.stall(stream, backoff, "recovery.backoff");
                metrics.inc("engine.fault_retries", 1);
                let backoff_ns = backoff.as_nanos();
                observer.decision(|| Decision::FaultRetry {
                    iteration: 0,
                    device: 0,
                    op: "alloc",
                    fault: "alloc.pressure",
                    attempt,
                    backoff_ns,
                });
            }
        }
    }
}

/// Max/mean degree ratio over an interval: the per-CTA imbalance a
/// vertex-centric kernel suffers without CTA load balancing. Capped at 16
/// (blocks internally mitigate extreme skew).
fn interval_skew(layout: &GraphLayout, sh: &Shard, in_edges: bool) -> f64 {
    let adj = if in_edges { &layout.csc } else { &layout.csr };
    let mut max = 0u64;
    let mut sum = 0u64;
    for v in sh.interval.start..sh.interval.end {
        let d = adj.degree(v);
        max = max.max(d);
        sum += d;
    }
    if sum == 0 {
        return 1.0;
    }
    let mean = sum as f64 / sh.interval.len() as f64;
    (max as f64 / mean.max(1.0)).clamp(1.0, 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_graph::gen;

    /// Connected components over undirected edges (min-label flooding).
    struct Cc;

    impl GasProgram for Cc {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "cc"
        }

        fn init_vertex(&self, v: u32, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    /// BFS with no gather phase (the paper's phase-elimination showcase).
    struct Bfs(u32);

    impl GasProgram for Bfs {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = ();

        fn name(&self) -> &'static str {
            "bfs"
        }

        fn init_vertex(&self, _v: u32, _d: u32) -> u32 {
            u32::MAX
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::Single(self.0)
        }

        fn gather_identity(&self) {}

        fn gather_map(&self, _d: &u32, _s: &u32, _e: &(), _w: f32) {}

        fn gather_reduce(&self, _a: (), _b: ()) {}

        fn apply(&self, v: &mut u32, _r: (), iter: u32) -> bool {
            if *v == u32::MAX {
                *v = iter;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}

        fn has_gather(&self) -> bool {
            false
        }
    }

    fn small_graph() -> GraphLayout {
        GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
    }

    fn reference_cc(layout: &GraphLayout) -> Vec<u32> {
        // Sequential min-label flooding to a fixed point.
        let n = layout.num_vertices();
        let mut label: Vec<u32> = (0..n).collect();
        loop {
            let mut changed = false;
            for v in 0..n {
                for (src, _) in layout.csc.entries(v) {
                    if label[src as usize] < label[v as usize] {
                        label[v as usize] = label[src as usize];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    #[test]
    fn cc_matches_reference_under_every_option_set() {
        let layout = small_graph();
        let want = reference_cc(&layout);
        let plat = Platform::paper_node_scaled(16384); // force out-of-core
        for opts in [
            Options::optimized(),
            Options::unoptimized(),
            Options::optimized().with_spray(false),
            Options::optimized().with_frontier_management(false),
            Options::optimized().with_phase_fusion(false),
            Options::optimized().with_async_streams(false),
            Options::optimized().with_gather_mode(GatherMode::VertexCentric),
            Options::optimized().with_gather_mode(GatherMode::EdgeCentricAtomic),
        ] {
            let out = GraphReduce::new(Cc, &layout, plat.clone(), opts.clone())
                .run()
                .unwrap();
            assert_eq!(out.vertex_values, want, "opts {opts:?}");
        }
    }

    #[test]
    fn bfs_depths_match_reference() {
        let layout = small_graph();
        // Reference BFS from 0.
        let n = layout.num_vertices();
        let mut depth = vec![u32::MAX; n as usize];
        depth[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(v) = queue.pop_front() {
            for (dst, _) in layout.csr.entries(v) {
                if depth[dst as usize] == u32::MAX {
                    depth[dst as usize] = depth[v as usize] + 1;
                    queue.push_back(dst);
                }
            }
        }
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node_scaled(16384),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, depth);
    }

    #[test]
    fn optimized_moves_fewer_bytes_than_unoptimized() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(16384);
        let opt = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let unopt = GraphReduce::new(Cc, &layout, plat, Options::unoptimized())
            .run()
            .unwrap();
        assert_eq!(opt.vertex_values, unopt.vertex_values);
        let ob = opt.stats.bytes_h2d + opt.stats.bytes_d2h;
        let ub = unopt.stats.bytes_h2d + unopt.stats.bytes_d2h;
        assert!(ob < ub, "optimized {ob} B vs unoptimized {ub} B");
        assert!(opt.stats.memcpy_time < unopt.stats.memcpy_time);
        assert!(opt.stats.elapsed < unopt.stats.elapsed);
    }

    #[test]
    fn frontier_management_skips_shards_for_bfs() {
        // A long path: most shards are inactive most iterations.
        let n = 2048u32;
        let el =
            gr_graph::EdgeList::from_edges(n, (0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>())
                .symmetrize();
        let layout = GraphLayout::build(&el);
        let plat = Platform::paper_node_scaled(1 << 16); // tiny device: many shards
        let with = GraphReduce::new(Bfs(0), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let without = GraphReduce::new(
            Bfs(0),
            &layout,
            plat,
            Options::optimized().with_frontier_management(false),
        )
        .run()
        .unwrap();
        assert_eq!(with.vertex_values, without.vertex_values);
        assert!(with.stats.skipped_shard_copies > 0);
        assert!(with.stats.num_shards > 1, "need an out-of-core setup");
        assert!(
            (with.stats.bytes_h2d as f64) < 0.7 * without.stats.bytes_h2d as f64,
            "frontier mgmt should slash copies: {} vs {}",
            with.stats.bytes_h2d,
            without.stats.bytes_h2d
        );
    }

    #[test]
    fn phase_elimination_skips_in_edges_for_bfs() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(16384);
        let fused = GraphReduce::new(
            Bfs(0),
            &layout,
            plat.clone(),
            Options::optimized().with_frontier_management(false),
        )
        .run()
        .unwrap();
        let unfused = GraphReduce::new(
            Bfs(0),
            &layout,
            plat,
            Options::optimized()
                .with_frontier_management(false)
                .with_phase_fusion(false),
        )
        .run()
        .unwrap();
        // Elimination drops in-edge buffers entirely; unfused mode hauls
        // them every iteration despite BFS never using them.
        assert!(fused.stats.bytes_h2d * 2 < unfused.stats.bytes_h2d);
    }

    #[test]
    fn in_memory_graph_runs_resident() {
        let layout = small_graph();
        // Full-size device: everything fits.
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        assert!(out.stats.all_resident);
        assert_eq!(out.stats.num_shards, 1);
        // Resident mode copies each buffer at most once: bytes are bounded
        // by ~one traversal of the graph's full records + static in/out.
        let one_pass = layout.num_edges() * 60 + layout.num_vertices() as u64 * 40;
        assert!(out.stats.bytes_h2d < one_pass);
    }

    #[test]
    fn iteration_trace_matches_frontier_dynamics() {
        let layout = small_graph();
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let sizes = out.stats.frontier_sizes();
        assert_eq!(sizes[0], 1); // BFS starts at one source
        assert!(out.stats.max_frontier() > 1);
        // The per-iteration activation chain is consistent: frontier of
        // iteration i+1 equals activated set of iteration i.
        for w in out.stats.per_iteration.windows(2) {
            assert_eq!(w[1].frontier_size, w[0].activated);
        }
    }

    #[test]
    fn spray_speeds_up_small_copy_heavy_runs() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(1 << 14); // many tiny shards
        let spray = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let no_spray = GraphReduce::new(Cc, &layout, plat, Options::optimized().with_spray(false))
            .run()
            .unwrap();
        assert_eq!(spray.vertex_values, no_spray.vertex_values);
        assert!(
            spray.stats.elapsed <= no_spray.stats.elapsed,
            "spray {:?} vs {:?}",
            spray.stats.elapsed,
            no_spray.stats.elapsed
        );
    }

    #[test]
    fn empty_graph_runs_zero_iterations() {
        let layout = GraphLayout::build(&gr_graph::EdgeList::new(0));
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        assert_eq!(out.stats.iterations, 0);
        assert!(out.vertex_values.is_empty());
    }

    #[test]
    fn isolated_vertices_converge_immediately_for_bfs() {
        let el = gr_graph::EdgeList::from_edges(8, vec![(0, 1)]);
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.stats.iterations, 2); // source, then vertex 1
        assert_eq!(out.vertex_values[0], 0);
        assert_eq!(out.vertex_values[1], 1);
        assert!(out.vertex_values[2..].iter().all(|&d| d == u32::MAX));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use gr_graph::{gen, EdgeList};

    use crate::api::InitialFrontier;

    struct Cc;

    impl GasProgram for Cc {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "cc"
        }

        fn init_vertex(&self, v: u32, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    #[test]
    fn out_of_host_core_streams_from_storage() {
        let layout = GraphLayout::build(&gen::uniform(512, 8000, 5).symmetrize());
        // Device forces sharding; host memory smaller than the graph.
        let mut plat = Platform::paper_node_scaled(1 << 13);
        plat.host.mem_capacity = 100_000; // ~1/8 of the graph footprint
        let ssd = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        plat.host.mem_capacity = 1 << 40;
        let ram = GraphReduce::new(Cc, &layout, plat, Options::optimized())
            .run()
            .unwrap();
        assert_eq!(ssd.vertex_values, ram.vertex_values);
        assert!(
            ssd.stats.elapsed > ram.stats.elapsed * 2,
            "SSD-backed run {:?} must be much slower than RAM-backed {:?}",
            ssd.stats.elapsed,
            ram.stats.elapsed
        );
        // Data volume over PCIe is identical — the tier only adds latency.
        assert_eq!(ssd.stats.bytes_h2d, ram.stats.bytes_h2d);
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        // Build a graph, run CC, append a bridging edge, rerun warm.
        let base = gen::uniform(600, 3000, 9).symmetrize();
        let layout = GraphLayout::build(&base);
        let plat = Platform::paper_node();
        let first = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();

        // Mutate: connect vertex 0's component to an isolated-ish pair.
        let mut edges = base.edges.clone();
        edges.push((0, 599));
        edges.push((599, 0));
        let updated = EdgeList::from_edges(600, edges);
        let layout2 = GraphLayout::build(&updated);

        let gr2 = GraphReduce::new(Cc, &layout2, plat.clone(), Options::optimized());
        let warm = gr2
            .run_warm(WarmStart {
                vertex_values: first.vertex_values.clone(),
                frontier: vec![0, 599],
            })
            .unwrap();
        let cold = gr2.run().unwrap();
        assert_eq!(warm.vertex_values, cold.vertex_values);
        assert!(
            warm.stats.iterations <= cold.stats.iterations,
            "incremental run took {} iterations vs {} cold",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert!(
            warm.stats.per_iteration[0].frontier_size <= 2,
            "warm start seeds only the mutation endpoints"
        );
    }

    #[test]
    fn partition_logic_plugin_changes_balance_not_results() {
        let layout = GraphLayout::build(&gen::rmat_g500(11, 40_000, 6).symmetrize());
        let plat = Platform::paper_node_scaled(1 << 13);
        let even_edges = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let even_vertices = GraphReduce::new(
            Cc,
            &layout,
            plat,
            Options::optimized().with_partition_logic(gr_graph::EvenVertexPartition),
        )
        .run()
        .unwrap();
        assert_eq!(even_edges.vertex_values, even_vertices.vertex_values);
        // Naive even-vertex intervals on a skewed graph need more shards to
        // fit (the heavy interval blows the slot budget until P grows) —
        // the measurable cost the paper's load-balanced default avoids.
        assert!(
            even_vertices.stats.num_shards >= even_edges.stats.num_shards,
            "even-vertex {} vs even-edge {}",
            even_vertices.stats.num_shards,
            even_edges.stats.num_shards
        );
    }

    #[test]
    fn warm_start_handles_added_vertices() {
        let base = gen::uniform(100, 500, 11).symmetrize();
        let layout = GraphLayout::build(&base);
        let plat = Platform::paper_node();
        let first = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        // Grow the vertex set and attach the new vertex.
        let mut edges = base.edges.clone();
        edges.push((5, 100));
        edges.push((100, 5));
        let layout2 = GraphLayout::build(&EdgeList::from_edges(101, edges));
        let gr2 = GraphReduce::new(Cc, &layout2, plat, Options::optimized());
        let warm = gr2
            .run_warm(WarmStart {
                vertex_values: first.vertex_values,
                frontier: vec![5, 100],
            })
            .unwrap();
        assert_eq!(warm.vertex_values, gr2.run().unwrap().vertex_values);
    }
}

#[cfg(test)]
mod streaming_mode_tests {
    use super::*;
    use crate::api::InitialFrontier;
    use crate::options::StreamingMode;
    use gr_graph::gen;

    struct Cc;

    impl GasProgram for Cc {
        type VertexValue = u32;
        type EdgeValue = ();
        type Gather = u32;

        fn name(&self) -> &'static str {
            "cc"
        }

        fn init_vertex(&self, v: u32, _d: u32) -> u32 {
            v
        }

        fn initial_frontier(&self) -> InitialFrontier {
            InitialFrontier::All
        }

        fn gather_identity(&self) -> u32 {
            u32::MAX
        }

        fn gather_map(&self, _d: &u32, src: &u32, _e: &(), _w: f32) -> u32 {
            *src
        }

        fn gather_reduce(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }

        fn apply(&self, v: &mut u32, r: u32, _i: u32) -> bool {
            if r < *v {
                *v = r;
                true
            } else {
                false
            }
        }

        fn scatter(&self, _s: &u32, _d: &u32, _e: &mut ()) {}
    }

    #[test]
    fn zero_copy_streaming_matches_results_and_shaves_time() {
        // The Section 3.2 future-work exploration: with GR's fully
        // sequential streamed buffers, zero-copy access wins slightly
        // (pinned sequential beats explicit staging — Figure 4) without
        // changing a single result bit.
        let layout = GraphLayout::build(&gen::stencil3d(8192, 140_000, 31).symmetrize());
        let plat = Platform::paper_node_scaled(1 << 12);
        let explicit = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let zero_copy = GraphReduce::new(
            Cc,
            &layout,
            plat,
            Options::optimized().with_streaming_mode(StreamingMode::ZeroCopySequential),
        )
        .run()
        .unwrap();
        assert_eq!(explicit.vertex_values, zero_copy.vertex_values);
        assert!(!explicit.stats.all_resident, "needs the streaming path");
        assert!(
            zero_copy.stats.memcpy_time < explicit.stats.memcpy_time,
            "zero-copy {:?} should undercut explicit staging {:?}",
            zero_copy.stats.memcpy_time,
            explicit.stats.memcpy_time
        );
        // Same byte volume crosses the link either way.
        assert_eq!(explicit.stats.bytes_h2d, zero_copy.stats.bytes_h2d);
    }
}

//! The single-GPU GraphReduce frontend: [`GraphReduce`] binds one
//! [`GasProgram`] to one graph on one platform and runs it through the
//! layered execution core in [`crate::exec`] (Figures 8-12).
//!
//! Execution is Bulk-Synchronous across phases (Section 4.4): every
//! iteration runs Gather over all shards, then Apply, then
//! Scatter+FrontierActivate, with device barriers between stages. Within a
//! stage, shards are independent and pipeline across `K` CUDA streams
//! (copy/compute overlap, Section 5.1); the spray operation spreads each
//! shard's sub-array copies over dynamically cycled streams so issue
//! overheads and DMA latencies pipeline through Hyper-Q.
//!
//! *Results* are computed eagerly on the host with identical semantics
//! regardless of the optimization flags — the flags only change what the
//! virtual device copies and launches, which is exactly the paper's claim
//! (the optimizations are pure data-movement/scheduling transformations).
//!
//! The planning, data-movement, compute-spec, device, and iteration-loop
//! layers themselves live under [`crate::exec`]; the graph-lifetime /
//! query-lifetime split lives in [`crate::session`]. This module holds
//! only the one-shot compatibility facade: [`GraphReduce`] is
//! `GraphSession::new(..)` plus a single [`crate::session::Query`] per
//! `run*` call.

use gr_graph::GraphLayout;
use gr_observe::{Observer, WallProfiler};
use gr_sim::Platform;

use crate::api::GasProgram;
use crate::options::Options;
use crate::recovery::EngineError;
use crate::session::{GraphSession, Query};
use crate::sizes::SizeModel;
use crate::stats::RunStats;

pub use crate::session::WarmStart;

/// Output of one GraphReduce run.
pub struct RunResult<P: GasProgram> {
    /// Final vertex values, indexed by vertex id.
    pub vertex_values: Vec<P::VertexValue>,
    /// Final mutable edge state, indexed by canonical edge id.
    pub edge_values: Vec<P::EdgeValue>,
    /// Everything the evaluation section measures.
    pub stats: RunStats,
}

/// The GraphReduce framework instance: one program bound to one graph on
/// one platform — a compatibility facade over [`GraphSession`] that runs
/// exactly one query per `run*` call.
pub struct GraphReduce<'g, P: GasProgram> {
    program: P,
    session: GraphSession<'g>,
    observer: Observer,
    wall: WallProfiler,
}

impl<'g, P: GasProgram> GraphReduce<'g, P> {
    pub fn new(program: P, layout: &'g GraphLayout, platform: Platform, opts: Options) -> Self {
        GraphReduce {
            program,
            session: GraphSession::new(layout, platform, opts),
            observer: Observer::disabled(),
            wall: WallProfiler::disarmed(),
        }
    }

    /// Attach a [`gr_observe::Observer`]: the run emits per-shard GAS
    /// phase spans, iteration spans, shard-skip and phase-fusion/
    /// elimination decisions, device op spans, and per-iteration
    /// metrics snapshots into its sink. The default (no observer) costs
    /// one branch per would-be event.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Attach a wall-clock profiler (armed or disarmed). Armed, the run
    /// attributes real host milliseconds per (iteration, shard, GAS
    /// phase, resolved kernel shape) — read back via
    /// [`WallProfiler::profile`](gr_observe::WallProfiler::profile) and
    /// summarized in [`RunStats::wall`](crate::stats::RunStats::wall).
    /// The default disarmed profiler costs one branch per would-be scope
    /// and changes nothing else.
    pub fn with_wall_profiler(mut self, wall: WallProfiler) -> Self {
        self.wall = wall;
        self
    }

    /// The byte model derived from the program's data types and phase set.
    pub fn size_model(&self) -> SizeModel {
        SizeModel::for_program(&self.program)
    }

    /// The underlying build-once session (shared partition plans and
    /// compressed topology) this facade runs its queries against.
    pub fn session(&self) -> &GraphSession<'g> {
        &self.session
    }

    fn query(&self) -> Query<'_, 'g, P> {
        self.session
            .query(&self.program)
            .with_observer(self.observer.clone())
            .with_wall_profiler(self.wall.clone())
    }

    /// Execute to convergence; returns final state and statistics.
    pub fn run(&self) -> Result<RunResult<P>, EngineError> {
        self.query().run()
    }

    /// Execute incrementally from a previous run's state (dynamic graphs).
    pub fn run_warm(&self, warm: WarmStart<P>) -> Result<RunResult<P>, EngineError> {
        self.query().warm(warm).run()
    }

    /// Resume a killed or interrupted run from the newest intact durable
    /// snapshot in `dir` (see [`crate::snapshot::CheckpointPolicy`]).
    ///
    /// The snapshot's fingerprint must match this instance's program and
    /// graph — a mismatch fails fast with
    /// [`SnapshotError::FingerprintMismatch`](crate::SnapshotError::FingerprintMismatch)
    /// rather than replaying the wrong state. A corrupt newest snapshot
    /// (failed checksum, truncation) silently falls back to the previous
    /// intact one. Full (GRCK), delta (GRCD — restored as its base full
    /// plus the newest delta), compressed (GRCZ) and multi-GPU (GRCM)
    /// snapshots are all accepted. Replay continues from the restored
    /// iteration boundary and converges bit-identically to an
    /// uninterrupted run.
    pub fn resume(&self, dir: impl AsRef<std::path::Path>) -> Result<RunResult<P>, EngineError> {
        self.query().resume(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::GatherMode;
    use crate::testprog::{Bfs, Cc};
    use gr_graph::gen;

    fn small_graph() -> GraphLayout {
        GraphLayout::build(&gen::uniform(512, 4096, 3).symmetrize())
    }

    fn reference_cc(layout: &GraphLayout) -> Vec<u32> {
        // Sequential min-label flooding to a fixed point.
        let n = layout.num_vertices();
        let mut label: Vec<u32> = (0..n).collect();
        loop {
            let mut changed = false;
            for v in 0..n {
                for (src, _) in layout.csc.entries(v) {
                    if label[src as usize] < label[v as usize] {
                        label[v as usize] = label[src as usize];
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    #[test]
    fn cc_matches_reference_under_every_option_set() {
        let layout = small_graph();
        let want = reference_cc(&layout);
        let plat = Platform::paper_node_scaled(16384); // force out-of-core
        for opts in [
            Options::optimized(),
            Options::unoptimized(),
            Options::optimized().with_spray(false),
            Options::optimized().with_frontier_management(false),
            Options::optimized().with_phase_fusion(false),
            Options::optimized().with_async_streams(false),
            Options::optimized().with_gather_mode(GatherMode::VertexCentric),
            Options::optimized().with_gather_mode(GatherMode::EdgeCentricAtomic),
        ] {
            let out = GraphReduce::new(Cc, &layout, plat.clone(), opts.clone())
                .run()
                .unwrap();
            assert_eq!(out.vertex_values, want, "opts {opts:?}");
        }
    }

    #[test]
    fn bfs_depths_match_reference() {
        let layout = small_graph();
        // Reference BFS from 0.
        let n = layout.num_vertices();
        let mut depth = vec![u32::MAX; n as usize];
        depth[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(v) = queue.pop_front() {
            for (dst, _) in layout.csr.entries(v) {
                if depth[dst as usize] == u32::MAX {
                    depth[dst as usize] = depth[v as usize] + 1;
                    queue.push_back(dst);
                }
            }
        }
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node_scaled(16384),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.vertex_values, depth);
    }

    #[test]
    fn optimized_moves_fewer_bytes_than_unoptimized() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(16384);
        let opt = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let unopt = GraphReduce::new(Cc, &layout, plat, Options::unoptimized())
            .run()
            .unwrap();
        assert_eq!(opt.vertex_values, unopt.vertex_values);
        let ob = opt.stats.bytes_h2d + opt.stats.bytes_d2h;
        let ub = unopt.stats.bytes_h2d + unopt.stats.bytes_d2h;
        assert!(ob < ub, "optimized {ob} B vs unoptimized {ub} B");
        assert!(opt.stats.memcpy_time < unopt.stats.memcpy_time);
        assert!(opt.stats.elapsed < unopt.stats.elapsed);
    }

    #[test]
    fn frontier_management_skips_shards_for_bfs() {
        // A long path: most shards are inactive most iterations.
        let n = 2048u32;
        let el =
            gr_graph::EdgeList::from_edges(n, (0..n - 1).map(|v| (v, v + 1)).collect::<Vec<_>>())
                .symmetrize();
        let layout = GraphLayout::build(&el);
        let plat = Platform::paper_node_scaled(1 << 16); // tiny device: many shards
        let with = GraphReduce::new(Bfs(0), &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let without = GraphReduce::new(
            Bfs(0),
            &layout,
            plat,
            Options::optimized().with_frontier_management(false),
        )
        .run()
        .unwrap();
        assert_eq!(with.vertex_values, without.vertex_values);
        assert!(with.stats.skipped_shard_copies > 0);
        assert!(with.stats.num_shards > 1, "need an out-of-core setup");
        assert!(
            (with.stats.bytes_h2d as f64) < 0.7 * without.stats.bytes_h2d as f64,
            "frontier mgmt should slash copies: {} vs {}",
            with.stats.bytes_h2d,
            without.stats.bytes_h2d
        );
    }

    #[test]
    fn phase_elimination_skips_in_edges_for_bfs() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(16384);
        let fused = GraphReduce::new(
            Bfs(0),
            &layout,
            plat.clone(),
            Options::optimized().with_frontier_management(false),
        )
        .run()
        .unwrap();
        let unfused = GraphReduce::new(
            Bfs(0),
            &layout,
            plat,
            Options::optimized()
                .with_frontier_management(false)
                .with_phase_fusion(false),
        )
        .run()
        .unwrap();
        // Elimination drops in-edge buffers entirely; unfused mode hauls
        // them every iteration despite BFS never using them.
        assert!(fused.stats.bytes_h2d * 2 < unfused.stats.bytes_h2d);
    }

    #[test]
    fn in_memory_graph_runs_resident() {
        let layout = small_graph();
        // Full-size device: everything fits.
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        assert!(out.stats.all_resident);
        assert_eq!(out.stats.num_shards, 1);
        // Resident mode copies each buffer at most once: bytes are bounded
        // by ~one traversal of the graph's full records + static in/out.
        let one_pass = layout.num_edges() * 60 + layout.num_vertices() as u64 * 40;
        assert!(out.stats.bytes_h2d < one_pass);
    }

    #[test]
    fn iteration_trace_matches_frontier_dynamics() {
        let layout = small_graph();
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        let sizes = out.stats.frontier_sizes();
        assert_eq!(sizes[0], 1); // BFS starts at one source
        assert!(out.stats.max_frontier() > 1);
        // The per-iteration activation chain is consistent: frontier of
        // iteration i+1 equals activated set of iteration i.
        for w in out.stats.per_iteration.windows(2) {
            assert_eq!(w[1].frontier_size, w[0].activated);
        }
    }

    #[test]
    fn spray_speeds_up_small_copy_heavy_runs() {
        let layout = small_graph();
        let plat = Platform::paper_node_scaled(1 << 14); // many tiny shards
        let spray = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let no_spray = GraphReduce::new(Cc, &layout, plat, Options::optimized().with_spray(false))
            .run()
            .unwrap();
        assert_eq!(spray.vertex_values, no_spray.vertex_values);
        assert!(
            spray.stats.elapsed <= no_spray.stats.elapsed,
            "spray {:?} vs {:?}",
            spray.stats.elapsed,
            no_spray.stats.elapsed
        );
    }

    #[test]
    fn empty_graph_runs_zero_iterations() {
        let layout = GraphLayout::build(&gr_graph::EdgeList::new(0));
        let out = GraphReduce::new(Cc, &layout, Platform::paper_node(), Options::optimized())
            .run()
            .unwrap();
        assert_eq!(out.stats.iterations, 0);
        assert!(out.vertex_values.is_empty());
    }

    #[test]
    fn isolated_vertices_converge_immediately_for_bfs() {
        let el = gr_graph::EdgeList::from_edges(8, vec![(0, 1)]);
        let layout = GraphLayout::build(&el);
        let out = GraphReduce::new(
            Bfs(0),
            &layout,
            Platform::paper_node(),
            Options::optimized(),
        )
        .run()
        .unwrap();
        assert_eq!(out.stats.iterations, 2); // source, then vertex 1
        assert_eq!(out.vertex_values[0], 0);
        assert_eq!(out.vertex_values[1], 1);
        assert!(out.vertex_values[2..].iter().all(|&d| d == u32::MAX));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::testprog::Cc;
    use gr_graph::{gen, EdgeList};

    #[test]
    fn out_of_host_core_streams_from_storage() {
        let layout = GraphLayout::build(&gen::uniform(512, 8000, 5).symmetrize());
        // Device forces sharding; host memory smaller than the graph.
        let mut plat = Platform::paper_node_scaled(1 << 13);
        plat.host.mem_capacity = 100_000; // ~1/8 of the graph footprint
        let ssd = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        plat.host.mem_capacity = 1 << 40;
        let ram = GraphReduce::new(Cc, &layout, plat, Options::optimized())
            .run()
            .unwrap();
        assert_eq!(ssd.vertex_values, ram.vertex_values);
        assert!(
            ssd.stats.elapsed > ram.stats.elapsed * 2,
            "SSD-backed run {:?} must be much slower than RAM-backed {:?}",
            ssd.stats.elapsed,
            ram.stats.elapsed
        );
        // Data volume over PCIe is identical — the tier only adds latency.
        assert_eq!(ssd.stats.bytes_h2d, ram.stats.bytes_h2d);
    }

    #[test]
    fn warm_start_converges_in_fewer_iterations() {
        // Build a graph, run CC, append a bridging edge, rerun warm.
        let base = gen::uniform(600, 3000, 9).symmetrize();
        let layout = GraphLayout::build(&base);
        let plat = Platform::paper_node();
        let first = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();

        // Mutate: connect vertex 0's component to an isolated-ish pair.
        let mut edges = base.edges.clone();
        edges.push((0, 599));
        edges.push((599, 0));
        let updated = EdgeList::from_edges(600, edges);
        let layout2 = GraphLayout::build(&updated);

        let gr2 = GraphReduce::new(Cc, &layout2, plat.clone(), Options::optimized());
        let warm = gr2
            .run_warm(WarmStart {
                vertex_values: first.vertex_values.clone(),
                frontier: vec![0, 599],
            })
            .unwrap();
        let cold = gr2.run().unwrap();
        assert_eq!(warm.vertex_values, cold.vertex_values);
        assert!(
            warm.stats.iterations <= cold.stats.iterations,
            "incremental run took {} iterations vs {} cold",
            warm.stats.iterations,
            cold.stats.iterations
        );
        assert!(
            warm.stats.per_iteration[0].frontier_size <= 2,
            "warm start seeds only the mutation endpoints"
        );
    }

    #[test]
    fn partition_logic_plugin_changes_balance_not_results() {
        let layout = GraphLayout::build(&gen::rmat_g500(11, 40_000, 6).symmetrize());
        let plat = Platform::paper_node_scaled(1 << 13);
        let even_edges = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let even_vertices = GraphReduce::new(
            Cc,
            &layout,
            plat,
            Options::optimized().with_partition_logic(gr_graph::EvenVertexPartition),
        )
        .run()
        .unwrap();
        assert_eq!(even_edges.vertex_values, even_vertices.vertex_values);
        // Naive even-vertex intervals on a skewed graph need more shards to
        // fit (the heavy interval blows the slot budget until P grows) —
        // the measurable cost the paper's load-balanced default avoids.
        assert!(
            even_vertices.stats.num_shards >= even_edges.stats.num_shards,
            "even-vertex {} vs even-edge {}",
            even_vertices.stats.num_shards,
            even_edges.stats.num_shards
        );
    }

    #[test]
    fn warm_start_handles_added_vertices() {
        let base = gen::uniform(100, 500, 11).symmetrize();
        let layout = GraphLayout::build(&base);
        let plat = Platform::paper_node();
        let first = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        // Grow the vertex set and attach the new vertex.
        let mut edges = base.edges.clone();
        edges.push((5, 100));
        edges.push((100, 5));
        let layout2 = GraphLayout::build(&EdgeList::from_edges(101, edges));
        let gr2 = GraphReduce::new(Cc, &layout2, plat, Options::optimized());
        let warm = gr2
            .run_warm(WarmStart {
                vertex_values: first.vertex_values,
                frontier: vec![5, 100],
            })
            .unwrap();
        assert_eq!(warm.vertex_values, gr2.run().unwrap().vertex_values);
    }
}

#[cfg(test)]
mod streaming_mode_tests {
    use super::*;
    use crate::options::StreamingMode;
    use crate::testprog::Cc;
    use gr_graph::gen;

    #[test]
    fn zero_copy_streaming_matches_results_and_shaves_time() {
        // The Section 3.2 future-work exploration: with GR's fully
        // sequential streamed buffers, zero-copy access wins slightly
        // (pinned sequential beats explicit staging — Figure 4) without
        // changing a single result bit.
        let layout = GraphLayout::build(&gen::stencil3d(8192, 140_000, 31).symmetrize());
        let plat = Platform::paper_node_scaled(1 << 12);
        let explicit = GraphReduce::new(Cc, &layout, plat.clone(), Options::optimized())
            .run()
            .unwrap();
        let zero_copy = GraphReduce::new(
            Cc,
            &layout,
            plat,
            Options::optimized().with_streaming_mode(StreamingMode::ZeroCopySequential),
        )
        .run()
        .unwrap();
        assert_eq!(explicit.vertex_values, zero_copy.vertex_values);
        assert!(!explicit.stats.all_resident, "needs the streaming path");
        assert!(
            zero_copy.stats.memcpy_time < explicit.stats.memcpy_time,
            "zero-copy {:?} should undercut explicit staging {:?}",
            zero_copy.stats.memcpy_time,
            explicit.stats.memcpy_time
        );
        // Same byte volume crosses the link either way.
        assert_eq!(explicit.stats.bytes_h2d, zero_copy.stats.bytes_h2d);
    }
}

//! Durable checkpoints: versioned, checksummed binary snapshots of the
//! engine's host-resident master state, written atomically at iteration
//! boundaries so a killed run can resume from disk.
//!
//! The host computes exact results deterministically (see
//! [`crate::checkpoint`]), so a snapshot of the host master state at a BSP
//! iteration boundary is a complete resume point: replaying the remaining
//! iterations converges bit-identically to the uninterrupted run. The
//! format is fixed-width little-endian ("GRCK" magic, version, algorithm /
//! graph / state fingerprints, value arrays via [`StateBytes`], frontier
//! bitmap words, the full iteration trace, trailing FNV-1a checksum) and
//! every write goes temp-file + rename so a crash mid-write never leaves a
//! half snapshot under a valid name. See `docs/DURABILITY.md`.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use gr_graph::{Bitmap, GraphLayout};

use crate::api::GasProgram;
use crate::stats::IterationStats;

/// Snapshot format version (bump on any layout change; readers reject
/// mismatches with [`SnapshotError::VersionMismatch`]).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GRCK";

/// How many intact snapshots a checkpoint directory retains: the latest
/// plus one fallback in case the latest is detected corrupt on resume.
pub const SNAPSHOTS_RETAINED: usize = 2;

/// When (and whether) the engine persists checkpoints to disk.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Rollback checkpoints stay in memory, exactly as before durable
    /// checkpoints existed: an armed fault plan clones host state each
    /// iteration, nothing touches disk. The default.
    #[default]
    InMemoryOnly,
    /// Never checkpoint, not even in memory. A rollback that would need a
    /// checkpoint then surfaces as [`EngineError::Unrecoverable`]
    /// (fail-stop); use only when replay-on-fault is unwanted.
    ///
    /// [`EngineError::Unrecoverable`]: crate::recovery::EngineError::Unrecoverable
    Off,
    /// Write a durable snapshot into `dir` at iteration boundary 0 and
    /// after every `every`-th completed iteration (and on convergence).
    /// [`GraphReduce::resume`](crate::GraphReduce::resume) restarts from
    /// the latest intact snapshot in `dir`.
    Durable { dir: PathBuf, every: u32 },
    /// Like [`CheckpointPolicy::Durable`], but between full snapshots the
    /// engine writes *delta* snapshots holding only the vertices whose
    /// state changed since the last full one (plus the bitmaps and trace,
    /// which are cheap). Every `full_every`-th durable boundary is
    /// promoted to a full snapshot so the restore chain stays at most one
    /// delta long. Restores are bit-identical to `Durable`.
    DurableDelta {
        dir: PathBuf,
        every: u32,
        full_every: u32,
    },
}

impl CheckpointPolicy {
    /// Convenience constructor for [`CheckpointPolicy::Durable`].
    pub fn durable(dir: impl Into<PathBuf>, every: u32) -> Self {
        CheckpointPolicy::Durable {
            dir: dir.into(),
            every: every.max(1),
        }
    }

    /// Convenience constructor for [`CheckpointPolicy::DurableDelta`]:
    /// durable boundary every `every` iterations, a full snapshot every
    /// `full_every` durable boundaries, deltas in between. Both clamp
    /// to at least 1.
    pub fn durable_delta(dir: impl Into<PathBuf>, every: u32, full_every: u32) -> Self {
        CheckpointPolicy::DurableDelta {
            dir: dir.into(),
            every: every.max(1),
            full_every: full_every.max(1),
        }
    }
}

/// Why a snapshot could not be written or read back. Every variant carries
/// the file (or directory) involved; read-side variants add the byte
/// offset at which decoding failed, mirroring the edge-list loader's
/// hardened errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// An OS-level I/O operation failed; `op` says which one, `detail` is
    /// the rendered `io::Error`.
    Io {
        path: PathBuf,
        op: &'static str,
        detail: String,
    },
    /// The file ended before `needed` more bytes for `what` (truncation).
    ShortRead {
        path: PathBuf,
        offset: u64,
        needed: u64,
        what: &'static str,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic { path: PathBuf },
    /// The file's format version is not [`SNAPSHOT_VERSION`].
    VersionMismatch {
        path: PathBuf,
        found: u32,
        expected: u32,
    },
    /// The trailing checksum does not match the content (bit rot or a
    /// torn write that slipped past the rename barrier).
    ChecksumMismatch {
        path: PathBuf,
        stored: u64,
        computed: u64,
    },
    /// The snapshot was taken for a different algorithm, graph, or state
    /// layout than the resuming run; `field` names the mismatch.
    FingerprintMismatch {
        path: PathBuf,
        field: &'static str,
        found: String,
        expected: String,
    },
    /// A decoded field is internally inconsistent (e.g. frontier words
    /// with tail bits past the vertex count).
    Corrupt {
        path: PathBuf,
        offset: u64,
        what: &'static str,
    },
    /// No intact snapshot exists under the directory.
    NoSnapshot { dir: PathBuf },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { path, op, detail } => {
                write!(f, "snapshot {op} failed for {}: {detail}", path.display())
            }
            SnapshotError::ShortRead {
                path,
                offset,
                needed,
                what,
            } => write!(
                f,
                "truncated snapshot {}: needed {needed} more bytes reading {what} \
                 (at byte offset {offset})",
                path.display()
            ),
            SnapshotError::BadMagic { path } => {
                write!(f, "{} is not a GraphReduce snapshot (bad magic)", path.display())
            }
            SnapshotError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "snapshot {} has format version {found}, this build reads {expected}",
                path.display()
            ),
            SnapshotError::ChecksumMismatch {
                path,
                stored,
                computed,
            } => write!(
                f,
                "snapshot {} is corrupt: stored checksum {stored:#018x} != computed {computed:#018x}",
                path.display()
            ),
            SnapshotError::FingerprintMismatch {
                path,
                field,
                found,
                expected,
            } => write!(
                f,
                "snapshot {} was taken for a different run: {field} is {found}, expected {expected}",
                path.display()
            ),
            SnapshotError::Corrupt { path, offset, what } => write!(
                f,
                "snapshot {} is corrupt: invalid {what} (at byte offset {offset})",
                path.display()
            ),
            SnapshotError::NoSnapshot { dir } => {
                write!(f, "no intact snapshot found under {}", dir.display())
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// StateBytes: fixed-width, endian-stable value serialization
// ---------------------------------------------------------------------------

/// Fixed-width little-endian serialization for GAS state values.
///
/// Every [`GasProgram`] value type (vertex, edge, gather) implements this
/// so checkpoints and spilled shards have a defined on-disk layout that is
/// independent of struct padding and host endianness. Floats round-trip by
/// bit pattern (`to_le_bytes`/`from_le_bytes`), so restored state is
/// bit-identical, NaNs included.
///
/// Composite value structs can implement it one field at a time with
/// [`impl_state_bytes!`](crate::impl_state_bytes).
pub trait StateBytes: Sized {
    /// Serialized width in bytes (fixed per type).
    const BYTES: usize;

    /// Write exactly [`Self::BYTES`] bytes into `out`.
    fn write_bytes(&self, out: &mut [u8]);

    /// Read a value back from exactly [`Self::BYTES`] bytes.
    fn read_bytes(src: &[u8]) -> Self;
}

macro_rules! impl_state_bytes_prim {
    ($($t:ty),+) => {$(
        impl StateBytes for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            fn write_bytes(&self, out: &mut [u8]) {
                out[..Self::BYTES].copy_from_slice(&self.to_le_bytes());
            }

            fn read_bytes(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src[..Self::BYTES].try_into().unwrap())
            }
        }
    )+};
}

impl_state_bytes_prim!(u32, u64, i32, i64, f32, f64);

impl StateBytes for () {
    const BYTES: usize = 0;

    fn write_bytes(&self, _out: &mut [u8]) {}

    fn read_bytes(_src: &[u8]) -> Self {}
}

/// Implement [`StateBytes`] for a plain struct by concatenating its fields
/// in declaration order:
///
/// ```
/// #[derive(Clone, Copy)]
/// pub struct PrValue { pub rank: f32, pub out_degree: u32 }
/// graphreduce::impl_state_bytes!(PrValue { rank: f32, out_degree: u32 });
/// ```
#[macro_export]
macro_rules! impl_state_bytes {
    ($ty:ty { $($field:ident: $fty:ty),+ $(,)? }) => {
        impl $crate::StateBytes for $ty {
            const BYTES: usize = 0 $(+ <$fty as $crate::StateBytes>::BYTES)+;

            fn write_bytes(&self, out: &mut [u8]) {
                let mut at = 0usize;
                $(
                    let w = <$fty as $crate::StateBytes>::BYTES;
                    <$fty as $crate::StateBytes>::write_bytes(&self.$field, &mut out[at..at + w]);
                    at += w;
                )+
                let _ = at;
            }

            fn read_bytes(src: &[u8]) -> Self {
                let mut at = 0usize;
                $(
                    let w = <$fty as $crate::StateBytes>::BYTES;
                    let $field = <$fty as $crate::StateBytes>::read_bytes(&src[at..at + w]);
                    at += w;
                )+
                let _ = at;
                Self { $($field),+ }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// FNV-1a checksums and fingerprints
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 (dependency-free; snapshot files are read fully
/// into memory anyway, so a cryptographic hash buys nothing here).
#[derive(Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// What makes a snapshot resumable by exactly one (program, graph, state
/// layout): the algorithm name, a structural hash of the graph, and a hash
/// of the value-type widths and phase set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Fingerprint {
    pub(crate) algorithm: String,
    pub(crate) graph: u64,
    pub(crate) state: u64,
}

/// Edges hashed exhaustively up to this count; larger graphs are
/// stride-sampled (still covering first/last edges) so fingerprinting
/// stays O(1M) however big the graph is.
const FP_EDGE_SAMPLES: u64 = 1 << 20;

/// Structural graph fingerprint: vertex/edge counts plus (sampled) edge
/// endpoints. Deterministic for a given layout; any re-partitioning or
/// edge edit changes it.
pub(crate) fn graph_fingerprint(layout: &GraphLayout) -> u64 {
    let n = layout.num_vertices();
    let m = layout.num_edges();
    let mut h = Fnv::new();
    h.update(&n.to_le_bytes());
    h.update(&m.to_le_bytes());
    let stride = (m / FP_EDGE_SAMPLES).max(1);
    let mut e = 0u64;
    while e < m {
        let (src, dst) = layout.edge_endpoints(e as u32);
        h.update(&src.to_le_bytes());
        h.update(&dst.to_le_bytes());
        e += stride;
    }
    if m > 0 {
        let (src, dst) = layout.edge_endpoints((m - 1) as u32);
        h.update(&src.to_le_bytes());
        h.update(&dst.to_le_bytes());
    }
    h.finish()
}

/// The fingerprint a run stamps into (and a resume validates against)
/// every snapshot.
pub(crate) fn fingerprint_for<P: GasProgram>(program: &P, layout: &GraphLayout) -> Fingerprint {
    let mut h = Fnv::new();
    for width in [P::VertexValue::BYTES, P::EdgeValue::BYTES, P::Gather::BYTES] {
        h.update(&(width as u64).to_le_bytes());
    }
    h.update(&[program.has_gather() as u8, program.has_scatter() as u8]);
    Fingerprint {
        algorithm: program.name().to_string(),
        graph: graph_fingerprint(layout),
        state: h.finish(),
    }
}

/// FNV-1a over the serialized form of a value slice — the run report's
/// `state_fingerprint`, which the CI kill-restart smoke diffs between a
/// resumed run and its uninterrupted oracle.
pub(crate) fn values_fingerprint<V: StateBytes>(values: &[V]) -> u64 {
    let mut h = Fnv::new();
    let mut buf = vec![0u8; V::BYTES];
    for v in values {
        v.write_bytes(&mut buf);
        h.update(&buf);
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Snapshot encode / decode
// ---------------------------------------------------------------------------

/// Host master state restored from a durable snapshot: everything
/// [`crate::exec::host::HostState`] holds, including the full iteration
/// trace (the in-memory [`crate::checkpoint::Checkpoint`] stores only its
/// length — a resumed run must reconstruct the whole trace so its
/// per-iteration report matches the uninterrupted oracle's).
pub(crate) struct RestoredState<P: GasProgram> {
    pub(crate) vertex_values: Vec<P::VertexValue>,
    pub(crate) edge_values: Vec<P::EdgeValue>,
    pub(crate) gather_temp: Vec<P::Gather>,
    pub(crate) frontier: Bitmap,
    pub(crate) changed: Bitmap,
    pub(crate) next_frontier: Bitmap,
    pub(crate) trace: Vec<IterationStats>,
}

impl<P: GasProgram> RestoredState<P> {
    /// Completed iterations at capture time; the resumed loop starts here.
    pub(crate) fn iterations_completed(&self) -> u32 {
        self.trace.len() as u32
    }
}

// Manual impl: the value types carry no Debug bound, so summarize sizes.
impl<P: GasProgram> std::fmt::Debug for RestoredState<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestoredState")
            .field("vertices", &self.vertex_values.len())
            .field("edges", &self.edge_values.len())
            .field("iterations", &self.trace.len())
            .finish()
    }
}

pub(crate) const TRACE_ENTRY_BYTES: usize = 40;

pub(crate) fn put_values<V: StateBytes>(out: &mut Vec<u8>, values: &[V]) {
    let start = out.len();
    out.resize(start + values.len() * V::BYTES, 0);
    for (i, v) in values.iter().enumerate() {
        v.write_bytes(&mut out[start + i * V::BYTES..start + (i + 1) * V::BYTES]);
    }
}

pub(crate) fn put_bitmap(out: &mut Vec<u8>, b: &Bitmap) {
    for w in b.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Serialize one consistent snapshot (checksum included) to bytes.
#[allow(clippy::too_many_arguments)] // mirrors the HostState fields 1:1
pub(crate) fn encode_snapshot<P: GasProgram>(
    fp: &Fingerprint,
    vertex_values: &[P::VertexValue],
    edge_values: &[P::EdgeValue],
    gather_temp: &[P::Gather],
    frontier: &Bitmap,
    changed: &Bitmap,
    next_frontier: &Bitmap,
    trace: &[IterationStats],
) -> Vec<u8> {
    let n = vertex_values.len() as u32;
    let m = edge_values.len() as u64;
    let words = (n as usize).div_ceil(64);
    let mut out = Vec::with_capacity(
        64 + fp.algorithm.len()
            + vertex_values.len() * P::VertexValue::BYTES
            + edge_values.len() * P::EdgeValue::BYTES
            + gather_temp.len() * P::Gather::BYTES
            + 3 * words * 8
            + trace.len() * TRACE_ENTRY_BYTES,
    );
    encode_envelope_header(&mut out, &SNAPSHOT_MAGIC, fp);
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&m.to_le_bytes());
    out.extend_from_slice(&(trace.len() as u32).to_le_bytes());
    put_values(&mut out, vertex_values);
    put_values(&mut out, edge_values);
    put_values(&mut out, gather_temp);
    put_bitmap(&mut out, frontier);
    put_bitmap(&mut out, changed);
    put_bitmap(&mut out, next_frontier);
    for it in trace {
        out.extend_from_slice(&it.frontier_size.to_le_bytes());
        out.extend_from_slice(&it.gathered_edges.to_le_bytes());
        out.extend_from_slice(&it.changed.to_le_bytes());
        out.extend_from_slice(&it.activated.to_le_bytes());
        out.extend_from_slice(&it.shards_processed.to_le_bytes());
        out.extend_from_slice(&it.shards_skipped.to_le_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Push the shared snapshot-family prefix: magic, format version, and the
/// run fingerprint (algorithm name, graph hash, state-layout hash).
pub(crate) fn encode_envelope_header(out: &mut Vec<u8>, magic: &[u8; 4], fp: &Fingerprint) {
    out.extend_from_slice(magic);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(fp.algorithm.len() as u32).to_le_bytes());
    out.extend_from_slice(fp.algorithm.as_bytes());
    out.extend_from_slice(&fp.graph.to_le_bytes());
    out.extend_from_slice(&fp.state.to_le_bytes());
}

/// Bounded little-endian reader with byte-offset error context.
pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
    pub(crate) path: &'a Path,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::ShortRead {
                path: self.path.to_path_buf(),
                offset: self.pos as u64,
                needed: (n - (self.buf.len() - self.pos)) as u64,
                what,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub(crate) fn values<V: StateBytes>(
        &mut self,
        count: usize,
        what: &'static str,
    ) -> Result<Vec<V>, SnapshotError> {
        let raw = self.take(count * V::BYTES, what)?;
        Ok((0..count)
            .map(|i| V::read_bytes(&raw[i * V::BYTES..(i + 1) * V::BYTES]))
            .collect())
    }

    pub(crate) fn bitmap(&mut self, len: u32, what: &'static str) -> Result<Bitmap, SnapshotError> {
        let words = (len as usize).div_ceil(64);
        let offset = self.pos as u64;
        let raw = self.take(words * 8, what)?;
        let words: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Bitmap::from_words(len, words).ok_or(SnapshotError::Corrupt {
            path: self.path.to_path_buf(),
            offset,
            what,
        })
    }

    pub(crate) fn mismatch(
        &self,
        field: &'static str,
        found: String,
        expected: String,
    ) -> SnapshotError {
        SnapshotError::FingerprintMismatch {
            path: self.path.to_path_buf(),
            field,
            found,
            expected,
        }
    }
}

/// Decode and fully validate one snapshot buffer: magic, version,
/// checksum, fingerprint, then state. Checksum runs before any field is
/// trusted, so bit flips anywhere in the file surface as
/// [`SnapshotError::ChecksumMismatch`], not as garbage state.
pub(crate) fn decode_snapshot<P: GasProgram>(
    path: &Path,
    buf: &[u8],
    fp: &Fingerprint,
) -> Result<RestoredState<P>, SnapshotError> {
    let mut r = check_envelope(path, buf, &SNAPSHOT_MAGIC)?;
    check_fingerprint(&mut r, fp)?;
    let n = r.u32("vertex count")?;
    let m = r.u64("edge count")?;
    let iters = r.u32("iteration count")? as usize;
    let vertex_values = r.values::<P::VertexValue>(n as usize, "vertex values")?;
    let edge_values = r.values::<P::EdgeValue>(m as usize, "edge values")?;
    let gather_temp = r.values::<P::Gather>(n as usize, "gather temps")?;
    let frontier = r.bitmap(n, "frontier bitmap")?;
    let changed = r.bitmap(n, "changed bitmap")?;
    let next_frontier = r.bitmap(n, "next-frontier bitmap")?;
    let mut trace = Vec::with_capacity(iters);
    for _ in 0..iters {
        trace.push(IterationStats {
            frontier_size: r.u64("trace: frontier size")?,
            gathered_edges: r.u64("trace: gathered edges")?,
            changed: r.u64("trace: changed count")?,
            activated: r.u64("trace: activated count")?,
            shards_processed: r.u32("trace: shards processed")?,
            shards_skipped: r.u32("trace: shards skipped")?,
        });
    }
    Ok(RestoredState {
        vertex_values,
        edge_values,
        gather_temp,
        frontier,
        changed,
        next_frontier,
        trace,
    })
}

/// Validate the shared envelope of any snapshot-family file (`magic`,
/// version, trailing whole-file checksum) and return a [`Reader`]
/// positioned after the version field over the checksummed body.
/// Integrity runs before any field is believed.
pub(crate) fn check_envelope<'a>(
    path: &'a Path,
    buf: &'a [u8],
    magic: &[u8; 4],
) -> Result<Reader<'a>, SnapshotError> {
    let mut r = Reader { buf, pos: 0, path };
    let found = r.take(4, "magic")?;
    if found != magic {
        return Err(SnapshotError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = r.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    if buf.len() < 8 {
        return Err(SnapshotError::ShortRead {
            path: path.to_path_buf(),
            offset: buf.len() as u64,
            needed: 8,
            what: "checksum",
        });
    }
    let body = &buf[..buf.len() - 8];
    let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    let computed = fnv1a(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch {
            path: path.to_path_buf(),
            stored,
            computed,
        });
    }
    Ok(Reader {
        buf: body,
        pos: r.pos,
        path,
    })
}

/// Read and validate the fingerprint header (algorithm, graph hash,
/// state-layout hash); any mismatch fails fast with field context.
pub(crate) fn check_fingerprint(r: &mut Reader<'_>, fp: &Fingerprint) -> Result<(), SnapshotError> {
    let algo_len = r.u32("algorithm name length")? as usize;
    if algo_len > 4096 {
        return Err(SnapshotError::Corrupt {
            path: r.path.to_path_buf(),
            offset: r.pos as u64 - 4,
            what: "algorithm name length",
        });
    }
    let algo = String::from_utf8_lossy(r.take(algo_len, "algorithm name")?).into_owned();
    if algo != fp.algorithm {
        return Err(r.mismatch("algorithm", algo, fp.algorithm.clone()));
    }
    let graph = r.u64("graph fingerprint")?;
    if graph != fp.graph {
        return Err(r.mismatch(
            "graph fingerprint",
            format!("{graph:#018x}"),
            format!("{:#018x}", fp.graph),
        ));
    }
    let state = r.u64("state fingerprint")?;
    if state != fp.state {
        return Err(r.mismatch(
            "state-layout fingerprint",
            format!("{state:#018x}"),
            format!("{:#018x}", fp.state),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Files: atomic write, retention, latest-intact scan
// ---------------------------------------------------------------------------

pub(crate) fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> SnapshotError {
    SnapshotError::Io {
        path: path.to_path_buf(),
        op,
        detail: e.to_string(),
    }
}

/// Snapshot filename for a given completed-iteration count (zero-padded so
/// lexicographic order == iteration order).
pub(crate) fn snapshot_name(iterations: u32) -> String {
    format!("ckpt-{iterations:08}.grck")
}

fn parse_snapshot_name(name: &str) -> Option<u32> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".grck")?
        .parse()
        .ok()
}

/// Write `bytes` to `dir/name` atomically: `.tmp` + fsync + rename, so a
/// crash mid-write never leaves a half file under a valid name. Returns
/// bytes written. Shared by full snapshots, deltas, and the storage
/// plane's fault-injectable write path.
pub(crate) fn write_named_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
) -> Result<u64, SnapshotError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, "create directory", e))?;
    let finalp = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, "write", e))?;
        f.sync_all().map_err(|e| io_err(&tmp, "sync", e))?;
    }
    fs::rename(&tmp, &finalp).map_err(|e| io_err(&finalp, "rename into place", e))?;
    Ok(bytes.len() as u64)
}

/// All full-snapshot files under `dir`, newest (highest iteration) first.
pub(crate) fn snapshot_files(dir: &Path) -> Result<Vec<(u32, PathBuf)>, SnapshotError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, "read directory", e))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "read directory entry", e))?;
        let name = entry.file_name();
        if let Some(iters) = name.to_str().and_then(parse_snapshot_name) {
            found.push((iters, entry.path()));
        }
    }
    found.sort_by_key(|&(iters, _)| std::cmp::Reverse(iters));
    Ok(found)
}

pub(crate) fn prune_old(dir: &Path) -> Result<(), SnapshotError> {
    for (_, path) in snapshot_files(dir)?.into_iter().skip(SNAPSHOTS_RETAINED) {
        fs::remove_file(&path).map_err(|e| io_err(&path, "prune", e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testprog::{Cc, Pr, PrValue};
    use gr_graph::{gen, GraphLayout};

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::uniform(96, 400, 5).symmetrize())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-snap-{tag}-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// Encoded snapshot whose vertex values carry `seed`, so tests can
    /// tell which file a resume actually restored.
    fn sample_state_seeded(fp: &Fingerprint, seed: u32) -> Vec<u8> {
        let mut frontier = Bitmap::new(96);
        frontier.set(3);
        frontier.set(77);
        let trace = vec![IterationStats {
            frontier_size: 96,
            gathered_edges: 400,
            changed: 12,
            activated: 2,
            shards_processed: 2,
            shards_skipped: 0,
        }];
        encode_snapshot::<Cc>(
            fp,
            &(0u32..96).map(|i| i + seed).collect::<Vec<_>>(),
            &[(); 800],
            &vec![u32::MAX; 96],
            &frontier,
            &Bitmap::new(96),
            &Bitmap::new(96),
            &trace,
        )
    }

    fn sample_state(fp: &Fingerprint) -> Vec<u8> {
        sample_state_seeded(fp, 0)
    }

    #[test]
    fn state_bytes_round_trip_primitives_and_structs() {
        let mut buf = [0u8; 8];
        42u32.write_bytes(&mut buf);
        assert_eq!(u32::read_bytes(&buf), 42);
        f32::NAN.write_bytes(&mut buf);
        assert!(f32::read_bytes(&buf).is_nan());
        (-1.5f64).write_bytes(&mut buf);
        assert_eq!(f64::read_bytes(&buf), -1.5);
        assert_eq!(<() as StateBytes>::BYTES, 0);
        // Struct via the macro (PrValue from the shared test programs).
        assert_eq!(PrValue::BYTES, 8);
        let v = PrValue {
            rank: 0.25,
            out_degree: 7,
        };
        v.write_bytes(&mut buf);
        let back = PrValue::read_bytes(&buf);
        assert_eq!(back.rank, 0.25);
        assert_eq!(back.out_degree, 7);
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let buf = sample_state(&fp);
        let path = Path::new("mem");
        let got = decode_snapshot::<Cc>(path, &buf, &fp).unwrap();
        assert_eq!(got.vertex_values, (0u32..96).collect::<Vec<_>>());
        assert_eq!(got.edge_values.len(), 800);
        assert_eq!(got.frontier.count(), 2);
        assert!(got.frontier.get(3) && got.frontier.get(77));
        assert_eq!(got.trace.len(), 1);
        assert_eq!(got.trace[0].gathered_edges, 400);
        assert_eq!(got.iterations_completed(), 1);
    }

    #[test]
    fn bit_flips_anywhere_fail_the_checksum() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let buf = sample_state(&fp);
        let path = Path::new("mem");
        // Flip one bit in several regions: header, values, bitmap, trace.
        for at in [9, 40, 200, buf.len() - 20] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            match decode_snapshot::<Cc>(path, &bad, &fp) {
                Err(SnapshotError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {at}: expected checksum mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_a_typed_short_read_with_offset() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let buf = sample_state(&fp);
        let path = Path::new("mem");
        // A file cut before the header ends can't even reach the checksum:
        // the reader reports exactly which field ran dry and where.
        match decode_snapshot::<Cc>(path, &buf[..6], &fp) {
            Err(SnapshotError::ShortRead {
                offset,
                needed,
                what,
                ..
            }) => {
                assert_eq!(offset, 4, "version field starts after the magic");
                assert_eq!(needed, 2, "4-byte version, 2 bytes left");
                assert_eq!(what, "version");
            }
            other => panic!("expected short read, got {other:?}"),
        }
        // A cut past the header leaves >= 8 trailing bytes, which the
        // checksum-before-trust pass interprets as the (now wrong)
        // checksum — truncation inside the body is an integrity failure,
        // never silently-short state.
        let cut = 60;
        match decode_snapshot::<Cc>(path, &buf[..cut], &fp) {
            Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // Cut off only part of the checksum: still typed, still located.
        let e = decode_snapshot::<Cc>(path, &buf[..buf.len() - 3], &fp).unwrap_err();
        assert!(matches!(e, SnapshotError::ChecksumMismatch { .. }));
        assert!(e.to_string().contains("corrupt"), "{e}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let mut buf = sample_state(&fp);
        let path = Path::new("mem");
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_snapshot::<Cc>(path, &bad, &fp),
            Err(SnapshotError::BadMagic { .. })
        ));
        buf[4] = 99; // version byte
        match decode_snapshot::<Cc>(path, &buf, &fp) {
            Err(SnapshotError::VersionMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, 99);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_mismatches_fail_fast_with_field_context() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let buf = sample_state(&fp);
        let path = Path::new("mem");
        // Different algorithm.
        let other = Fingerprint {
            algorithm: "pagerank".into(),
            ..fp.clone()
        };
        let e = decode_snapshot::<Cc>(path, &buf, &other).unwrap_err();
        assert!(e.to_string().contains("algorithm"), "{e}");
        // Different graph.
        let l2 = GraphLayout::build(&gen::uniform(96, 420, 6).symmetrize());
        let fp2 = fingerprint_for(&Cc, &l2);
        assert_ne!(
            fp.graph, fp2.graph,
            "distinct graphs must fingerprint apart"
        );
        let e = decode_snapshot::<Cc>(path, &buf, &fp2).unwrap_err();
        assert!(
            matches!(e, SnapshotError::FingerprintMismatch { field, .. } if field == "graph fingerprint"),
        );
        // Different state layout (Pr has an 8-byte vertex value).
        let fp3 = fingerprint_for(&Pr, &l);
        assert_ne!(fp.state, fp3.state);
    }

    #[test]
    fn atomic_write_retention_and_latest_scan() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("retain");
        for iters in [0u32, 2, 4, 6] {
            let buf = sample_state_seeded(&fp, iters);
            write_named_atomic(&dir, &snapshot_name(iters), &buf).unwrap();
            prune_old(&dir).unwrap();
        }
        let files = snapshot_files(&dir).unwrap();
        assert_eq!(files.len(), SNAPSHOTS_RETAINED, "older snapshots pruned");
        assert_eq!(files[0].0, 6);
        assert_eq!(files[1].0, 4);
        // No temp litter survives a completed write.
        assert!(fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        let r = crate::snapshot_delta::load_newest::<Cc>(&dir, &fp).unwrap();
        assert_eq!(r.state.vertex_values[0], 6, "the newest file was loaded");
        assert!(r.bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_latest_falls_back_to_previous_intact() {
        let l = layout();
        let fp = fingerprint_for(&Cc, &l);
        let dir = tmpdir("fallback");
        write_named_atomic(&dir, &snapshot_name(4), &sample_state_seeded(&fp, 4)).unwrap();
        write_named_atomic(&dir, &snapshot_name(6), &sample_state_seeded(&fp, 6)).unwrap();
        // Flip a byte in the newest file.
        let latest = dir.join(snapshot_name(6));
        let mut raw = fs::read(&latest).unwrap();
        raw[100] ^= 0xff;
        fs::write(&latest, &raw).unwrap();
        let r = crate::snapshot_delta::load_newest::<Cc>(&dir, &fp).unwrap();
        assert_eq!(r.state.vertex_values[0], 4, "fell back to the intact file");
        // Both corrupt -> typed error, not garbage state.
        let prev = dir.join(snapshot_name(4));
        let mut raw = fs::read(&prev).unwrap();
        let at = raw.len() - 1;
        raw.truncate(at);
        fs::write(&prev, &raw).unwrap();
        assert!(crate::snapshot_delta::load_newest::<Cc>(&dir, &fp).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_is_a_clean_no_snapshot() {
        let dir = tmpdir("empty");
        let fp = Fingerprint {
            algorithm: "cc".into(),
            graph: 1,
            state: 2,
        };
        assert!(matches!(
            crate::snapshot_delta::load_newest::<Cc>(&dir, &fp),
            Err(SnapshotError::NoSnapshot { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
        assert!(matches!(
            crate::snapshot_delta::load_newest::<Cc>(&dir, &fp),
            Err(SnapshotError::Io { .. })
        ));
    }

    #[test]
    fn checkpoint_policy_defaults_and_clamps() {
        assert_eq!(CheckpointPolicy::default(), CheckpointPolicy::InMemoryOnly);
        match CheckpointPolicy::durable("/tmp/x", 0) {
            CheckpointPolicy::Durable { every, .. } => assert_eq!(every, 1, "0 clamps to 1"),
            _ => unreachable!(),
        }
        match CheckpointPolicy::durable_delta("/tmp/x", 0, 0) {
            CheckpointPolicy::DurableDelta {
                every, full_every, ..
            } => {
                assert_eq!(every, 1, "0 clamps to 1");
                assert_eq!(full_every, 1, "0 clamps to 1");
            }
            _ => unreachable!(),
        }
    }
}

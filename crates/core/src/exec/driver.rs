//! The iteration driver: BSP loop, frontier skip, timeline emission,
//! checkpoint/rollback, and host fallback for one device.
//!
//! `Runner` wires the exec layers together for the single-GPU path —
//! [`super::plan`] derives the governed [`ExecPlan`](super::plan::ExecPlan),
//! [`super::movement`] moves shard buffers, [`super::compute`] prices the
//! kernels, and every device op goes through [`super::device::DeviceCtx`].
//! The host-side exact computation (`HostState`, in [`super::host`]) and
//! the rollback bookkeeping (`roll_back`) are shared with the multi-GPU
//! orchestrator so both paths produce bit-identical results and identical
//! recovery charges for identical fault schedules.

use gr_graph::{GraphLayout, TopoView};
use std::sync::Arc;

use gr_observe::{Decision, MetricsRegistry, Observer, SpanEvent, WallProfiler};
use gr_sim::{cpu_time, DeviceFault, HostConfig, KernelSpec, Platform, SimDuration, StreamId};

use crate::api::GasProgram;
use crate::checkpoint::Checkpoint;
use crate::engine::{RunResult, WarmStart};
use crate::options::Options;
use crate::phases::ShardWork;
use crate::recovery::EngineError;
use crate::sizes::{PartitionPlan, SizeModel};
use crate::snapshot::{self, CheckpointPolicy};
use crate::snapshot_delta::{self, RestoredFromDisk};
use crate::stats::RunStats;
use crate::storage::StorageCtx;
use crate::store::{shard_payload, ShardStoreHandle};

use super::compress::{ShardCompression, RAW_TOPO_ENTRY_BYTES};
use super::compute::{host_work, ComputeSpecs};
use super::device::{Abort, DeviceCtx};
use super::durable::{DurableConfig, DurableWriter};
use super::host::HostState;
use super::movement::{in_bufs_for, out_bufs_for, Buf, BufSet, Movement};
use super::plan;

/// Iteration replays allowed before a persistent fault becomes
/// [`EngineError::Unrecoverable`] (guards against pathological hand-built
/// plans that fault the same op forever).
pub(crate) const REPLAY_CAP: u32 = 64;

/// Handle a persistent transient fault: count the rollback, log the
/// [`Decision::Rollback`], and let the caller replay from its checkpoint —
/// or surface [`EngineError::Unrecoverable`] once [`REPLAY_CAP`] replays
/// have burned. Shared verbatim by the single driver and the multi
/// orchestrator so both charge and log rollbacks identically.
pub(crate) fn roll_back(
    observer: &Observer,
    metrics: &mut MetricsRegistry,
    iter: u32,
    replays: u32,
    device: u32,
    op: &'static str,
    fault: DeviceFault,
) -> Result<(), EngineError> {
    if replays > REPLAY_CAP {
        return Err(EngineError::Unrecoverable { op });
    }
    metrics.inc("engine.rollbacks", 1);
    let name = fault.name();
    observer.decision(|| Decision::Rollback {
        iteration: iter,
        device,
        op,
        fault: name,
    });
    Ok(())
}

/// The single-GPU iteration driver (Figures 8-12): one [`DeviceCtx`], one
/// [`Movement`] policy, one [`ComputeSpecs`] table, one [`HostState`].
pub(crate) struct Runner<'a, P: GasProgram> {
    program: &'a P,
    layout: &'a GraphLayout,
    opts: &'a Options,
    sizes: SizeModel,
    plan: PartitionPlan,
    ctx: DeviceCtx,
    movement: Movement,
    specs: ComputeSpecs,
    host: HostState<P>,
    // Residency caching (in-GPU-memory mode).
    resident: bool,
    in_cached: Vec<bool>,
    out_cached: Vec<bool>,
    // Per-shard buffer lists, computed once (the emit loops used to
    // rebuild these Vecs every shard every iteration).
    in_buf_sets: Vec<BufSet>,
    out_buf_sets: Vec<BufSet>,
    gather_temp_bufs: Vec<Buf>,
    edge_update_bufs: Vec<Buf>,
    apply_vertex_bufs: Vec<Buf>,
    out_dst_bufs: Vec<Buf>,
    frontier_bits_bufs: Vec<Buf>,
    // Fault recovery: whether a fault plan is armed (gates per-iteration
    // checkpoints), and the degraded host-CPU mode entered after
    // permanent device loss.
    fault_active: bool,
    host_cfg: HostConfig,
    host_mode: bool,
    host_time: SimDuration,
    // Memory governor outcome: shards degraded to host execution.
    host_shards: Vec<bool>,
    any_host_shards: bool,
    // Durable checkpoints: the writer (full/delta schedule + snapshot
    // framing) when the policy is durable, and the run fingerprint
    // (computed only when durability or spill is armed).
    durable: Option<DurableWriter>,
    ckpt_off: bool,
    fingerprint: Option<snapshot::Fingerprint>,
    // Fault-hardened storage plane: every spill/checkpoint I/O goes
    // through it so injected I/O faults retry and degrade gracefully.
    storage: StorageCtx,
    // Shard compression: the gap-coded topology (if armed) the host
    // kernels decode through and the movement layer ships — built once per
    // session and shared by every query over it.
    comp: Option<Arc<ShardCompression>>,
    // Out-of-host-core spill: the store (if any), which shards were
    // evicted to it, and which have been verified back in already.
    store: Option<ShardStoreHandle>,
    spilled: Vec<bool>,
    spill_loaded: Vec<bool>,
    any_spilled: bool,
    // Process-kill fault: iteration boundary at which the run dies.
    kill_at: Option<u32>,
    observer: Observer,
    // Real wall-clock attribution (disarmed by default — one branch per
    // scope; see `gr_observe::profiler`).
    wall: WallProfiler,
}

impl<'a, P: GasProgram> Runner<'a, P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: &'a P,
        layout: &'a GraphLayout,
        platform: &Platform,
        opts: &'a Options,
        sizes: SizeModel,
        plan: PartitionPlan,
        warm: Option<WarmStart<P>>,
        restored: Option<RestoredFromDisk<P>>,
        observer: Observer,
        wall: WallProfiler,
        comp: Option<Arc<ShardCompression>>,
        lane: Option<String>,
    ) -> Result<Self, EngineError> {
        let fault_active = !opts.fault_plan.is_none();
        let mut ctx = DeviceCtx::new(
            platform,
            0,
            observer.clone(),
            lane,
            opts.fault_plan.clone(),
            opts.mem_cap,
            opts.recovery.clone(),
        );
        // Plan optimistically, govern at runtime: the partition plan was
        // sized for the nominal device; a memory cap shrinks the pool and
        // the governor degrades the plan until it fits (or errors).
        let capacity = ctx.mem_capacity();
        let governed = plan::build_exec_plan(
            plan,
            &sizes,
            layout,
            capacity,
            opts,
            comp.as_deref(),
            &mut ctx.metrics,
            &observer,
        )?;
        let plan = governed.partition;
        let k = plan.concurrent as usize;
        // One CompressShard decision per governed shard, with the honest
        // ratio the run will see on the wire (full raw buffer set vs
        // compressed set); totals land in RunStats via engine counters.
        if let Some(c) = &comp {
            let codec_name = c.codec().name();
            let force = !opts.phase_fusion;
            for (i, sh) in plan.shards.iter().enumerate() {
                let raw: u64 = in_bufs_for(&sizes, sh, force)
                    .as_slice()
                    .iter()
                    .chain(out_bufs_for(&sizes, sh, force).as_slice())
                    .map(|b| b.0)
                    .sum();
                let z: u64 = c
                    .in_bufs(&sizes, sh, force)
                    .as_slice()
                    .iter()
                    .chain(c.out_bufs(&sizes, sh, force).as_slice())
                    .map(|b| b.0)
                    .sum();
                ctx.metrics.inc("engine.compressed_raw_bytes", raw);
                ctx.metrics.inc("engine.compressed_bytes", z);
                observer.decision(|| Decision::CompressShard {
                    shard: i as u32,
                    raw_bytes: raw,
                    compressed_bytes: z,
                    codec: codec_name,
                });
            }
        }

        // Streams before allocations: allocation-retry backoff stalls are
        // charged on a stream, so one must exist first.
        ctx.create_main_streams(k);
        if opts.spray {
            ctx.create_spray_streams(opts.spray_width.max(1) as usize * k);
        }

        // Device allocations: static buffers, then either every shard
        // (resident mode) or K reusable streaming slots sized to the
        // governed budget. The governed plan guarantees these fit, but
        // injected allocation pressure — or a plan invalidated by a
        // shrunken device — surfaces as an [`EngineError`] instead of a
        // panic. Whole-run host mode allocates nothing.
        let s0 = ctx.main_streams[0];
        let resident = !governed.host_run && opts.cache_resident && plan.all_resident;
        if !governed.host_run {
            ctx.static_alloc = Some(ctx.alloc_retry(s0, plan.static_bytes)?);
            ctx.shard_allocs = if resident {
                plan.shards
                    .iter()
                    .map(|s| match &comp {
                        Some(c) => c.shard_bytes(&sizes, s),
                        None => sizes.shard_bytes(s),
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|b| ctx.alloc_retry(s0, b))
                    .collect::<Result<_, _>>()?
            } else {
                (0..k)
                    .map(|_| ctx.alloc_retry(s0, governed.slot_bytes))
                    .collect::<Result<_, _>>()?
            };
        }

        let (restored_state, restored_bytes, restored_chain) = match restored {
            Some(r) => (Some(r.state), r.bytes, r.delta),
            None => (None, 0, None),
        };
        let restored_boundary = restored_state.as_ref().map(|r| r.iterations_completed());
        let host = match restored_state {
            Some(r) => {
                let b = r.iterations_completed();
                ctx.metrics.inc("engine.checkpoint_restores", 1);
                observer.decision(|| Decision::CheckpointRestore {
                    iteration: b,
                    bytes: restored_bytes,
                });
                HostState::restored(r)
            }
            None => match warm {
                Some(w) => HostState::warm(program, layout, w),
                None => HostState::cold(program, layout),
            },
        };

        // Fault-hardened storage plane: spill and checkpoint I/O below
        // retries injected faults with logged backoff and degrades
        // gracefully after exhaustion instead of failing the run.
        let mut storage =
            StorageCtx::new(&opts.fault_plan, opts.recovery.clone(), observer.clone());

        // Out-of-host-core: if the full graph footprint exceeds host DRAM,
        // every shard fetch pays a storage read first (Section 8, future
        // work (2)). With a shard store configured the blanket stall is
        // replaced by precise per-shard spill charges below.
        let n = layout.num_vertices();
        let host_footprint = gr_graph::in_memory_bytes(n as u64, layout.num_edges());
        let over_host_ram = host_footprint > platform.host.mem_capacity;
        let storage_read_secs_per_byte = (over_host_ram && opts.shard_store.is_none())
            .then(|| 1.0 / (platform.storage.bandwidth_gbps * 1e9));

        // Spill rung: evict shards to the store. The governor already
        // marked unstageable shards; a graph beyond host DRAM evicts every
        // streamed shard (GraphChi-style out-of-host-core). Each eviction
        // writes the shard's topology payload and logs one ShardSpill.
        let mut spilled = governed.spilled;
        if let Some(h) = &opts.shard_store {
            if !governed.host_run && over_host_ram {
                for (i, s) in spilled.iter_mut().enumerate() {
                    if !governed.host_shards[i] {
                        *s = true;
                    }
                }
            }
            for (i, flag) in spilled.iter_mut().enumerate() {
                if !*flag {
                    continue;
                }
                // `put` reports the bytes that actually hit the store —
                // smaller than the payload when the store compresses. A
                // put whose retries are exhausted by injected I/O faults
                // leaves the shard host-resident instead of failing.
                let payload = shard_payload(layout, &plan.shards[i]);
                match storage.spill_put(h, i as u32, &payload, 0)? {
                    Some(bytes) => {
                        ctx.metrics.inc("engine.spilled_shards", 1);
                        ctx.metrics.inc("engine.spilled_bytes", bytes);
                        let store_name = h.name();
                        observer.decision(|| Decision::ShardSpill {
                            shard: i as u32,
                            bytes,
                            store: store_name,
                        });
                    }
                    None => *flag = false,
                }
            }
        }
        let any_spilled = spilled.iter().any(|&s| s);
        let mut movement = Movement::new(
            opts,
            governed.chunked,
            governed.slot_bytes.max(1),
            storage_read_secs_per_byte,
            platform.storage.latency,
        );
        if any_spilled {
            movement.set_spilled(
                spilled.clone(),
                1.0 / (platform.storage.bandwidth_gbps * 1e9),
            );
        }

        // Durable checkpoints: armed by CheckpointPolicy::Durable{,Delta}.
        // The fingerprint (also needed to validate spill-era state hashes)
        // is computed once up front. A resume seeds the writer's schedule
        // (and delta dirty chain) so it continues exactly where the killed
        // run left off.
        let durable_cfg = DurableConfig::from_policy(&opts.checkpoint_policy);
        let ckpt_off = matches!(opts.checkpoint_policy, CheckpointPolicy::Off);
        let fingerprint = (durable_cfg.is_some() || restored_boundary.is_some() || any_spilled)
            .then(|| snapshot::fingerprint_for(program, layout));
        let durable = durable_cfg.map(|cfg| {
            let fp = fingerprint
                .clone()
                .expect("fingerprint computed whenever durable is armed");
            let mut w = DurableWriter::new(cfg, fp, layout.num_vertices(), opts.shard_compression);
            if let Some(b) = restored_boundary {
                w.note_restored(b, restored_chain);
            }
            w
        });
        let specs = ComputeSpecs::new(sizes, opts, layout, &plan.shards, &wall);

        // Buffer lists are a pure function of the shard geometry and the
        // size model: compute them once. `force` mirrors which emit path
        // this run will take (fused passes force=false, unfused true).
        let force = !opts.phase_fusion;
        let in_buf_sets = plan
            .shards
            .iter()
            .map(|sh| match &comp {
                Some(c) => c.in_bufs(&sizes, sh, force),
                None => in_bufs_for(&sizes, sh, force),
            })
            .collect();
        let out_buf_sets = plan
            .shards
            .iter()
            .map(|sh| match &comp {
                Some(c) => c.out_bufs(&sizes, sh, force),
                None => out_bufs_for(&sizes, sh, force),
            })
            .collect();
        let gather_temp_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices() * sizes.gather, "gather.temp"))
            .collect();
        let edge_update_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_in_edges() * (sizes.gather + 4), "edge.update"))
            .collect();
        let apply_vertex_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices() * sizes.vertex_value, "apply.vertices"))
            .collect();
        let out_dst_bufs = plan
            .shards
            .iter()
            .map(|sh| match &comp {
                // Unfused FrontierActivate re-reads the out topology; under
                // compression that is the CSR gap stream again.
                Some(c) => (c.csr_bytes(sh), "out.topo.z"),
                None => (sh.num_out_edges() * 4, "out.dst"),
            })
            .collect();
        let frontier_bits_bufs = plan
            .shards
            .iter()
            .map(|sh| (sh.num_vertices().div_ceil(8), "frontier.bits"))
            .collect();

        let num_shards = plan.shards.len();
        Ok(Runner {
            program,
            layout,
            opts,
            sizes,
            plan,
            ctx,
            movement,
            specs,
            host,
            resident,
            in_cached: vec![false; num_shards],
            out_cached: vec![false; num_shards],
            fault_active,
            host_cfg: platform.host.clone(),
            host_mode: governed.host_run,
            host_time: SimDuration::ZERO,
            any_host_shards: governed.host_shards.iter().any(|&h| h),
            host_shards: governed.host_shards,
            durable,
            ckpt_off,
            fingerprint,
            storage,
            comp,
            store: opts.shard_store.clone(),
            spilled,
            spill_loaded: vec![false; num_shards],
            any_spilled,
            kill_at: opts.fault_plan.kill_at(),
            in_buf_sets,
            out_buf_sets,
            gather_temp_bufs,
            edge_update_bufs,
            apply_vertex_bufs,
            out_dst_bufs,
            frontier_bits_bufs,
            observer,
            wall,
        })
    }

    /// Current virtual time: device clock plus any degraded-mode host time.
    fn now_ns(&self) -> u64 {
        self.ctx.elapsed().as_nanos() + self.host_time.as_nanos()
    }

    pub(crate) fn run(mut self) -> Result<RunResult<P>, EngineError> {
        self.wall.set_algorithm(self.program.name());
        plan::emit_plan_decisions(
            &self.observer,
            self.opts.phase_fusion,
            self.program.has_gather(),
            self.program.has_scatter(),
        );
        self.emit_init()?;
        let max_iter = self.program.max_iterations();
        // Resume continues from the restored boundary (0 on a cold start);
        // a forced snapshot first makes even a kill at iteration 0
        // restartable.
        let mut iter = self.host.iterations.len() as u32;
        self.write_durable(true)?;
        while iter < max_iter && self.host.frontier.count() > 0 {
            if self.kill_at == Some(iter) {
                return Err(EngineError::Killed { iteration: iter });
            }
            let iter_start_ns = self.now_ns();
            self.run_iteration(iter)?;
            if let Some(w) = self.durable.as_mut() {
                w.record_iteration(&self.host.changed);
            }
            self.write_durable(false)?;
            let iter_end_ns = self.now_ns();
            let st = self
                .host
                .iterations
                .last()
                .expect("pushed by compute_iteration");
            self.observer.span(|| SpanEvent {
                track: "engine",
                lane: "iterations".into(),
                name: format!("iteration {iter}"),
                start_ns: iter_start_ns,
                dur_ns: iter_end_ns - iter_start_ns,
                fields: vec![
                    ("iteration", iter.into()),
                    ("frontier_size", st.frontier_size.into()),
                    ("changed", st.changed.into()),
                    ("shards_processed", st.shards_processed.into()),
                    ("shards_skipped", st.shards_skipped.into()),
                ],
            });
            let gpu_metrics = self.ctx.gpu_metrics();
            self.observer
                .snapshot(&format!("iteration {iter}"), || gpu_metrics.snapshot());
            iter += 1;
        }
        // Converged: force a final snapshot so a completed run's durable
        // state is the answer, not the last periodic boundary.
        self.write_durable(true)?;
        self.emit_finalize()?;
        let gpu_metrics = self.ctx.gpu_metrics();
        self.observer.snapshot("run", || gpu_metrics.snapshot());
        let engine_metrics = &self.ctx.metrics;
        self.observer
            .snapshot("engine", || engine_metrics.snapshot());
        // Every transfer/time/skip field below reads the device and
        // engine metric registries — RunStats holds no counters of its
        // own.
        let gstats = self.ctx.stats();
        let metrics = &self.ctx.metrics;
        let stats = RunStats {
            algorithm: self.program.name(),
            iterations: iter,
            elapsed: gstats.elapsed + self.host_time,
            memcpy_time: gstats.memcpy_busy,
            kernel_time: gstats.kernel_busy,
            bytes_h2d: gstats.bytes_h2d,
            bytes_d2h: gstats.bytes_d2h,
            copy_ops: gstats.copy_ops,
            kernel_launches: gstats.kernel_launches,
            skipped_shard_copies: metrics.counter("engine.skipped_shard_copies"),
            skipped_kernel_launches: metrics.counter("engine.skipped_kernel_launches"),
            num_shards: self.plan.shards.len(),
            concurrent_shards: self.plan.concurrent,
            all_resident: self.resident,
            faults_injected: self.ctx.faults_injected(),
            recovered_retries: metrics.counter("engine.fault_retries"),
            rollbacks: metrics.counter("engine.rollbacks"),
            checkpoints: metrics.counter("engine.checkpoints"),
            host_fallback: self.host_mode,
            mem_pressure_events: metrics.counter("engine.mem_pressure"),
            shard_splits: metrics.counter("engine.shard_splits"),
            chunked_shards: metrics.counter("engine.chunked_shards"),
            chunked_copies: metrics.counter("engine.chunked_copies"),
            host_shards: metrics.counter("engine.host_shards"),
            mem_peak: self.ctx.mem_peak(),
            mem_min_headroom: self.ctx.mem_min_headroom(),
            checkpoint_writes: metrics.counter("engine.checkpoint_writes"),
            checkpoint_bytes_written: metrics.counter("engine.checkpoint_bytes"),
            checkpoint_full_bytes: metrics.counter("engine.checkpoint_full_bytes"),
            checkpoint_delta_writes: metrics.counter("engine.checkpoint_delta_writes"),
            checkpoint_delta_bytes: metrics.counter("engine.checkpoint_delta_bytes"),
            checkpoint_raw_bytes: metrics.counter("engine.checkpoint_raw_bytes"),
            checkpoint_restores: metrics.counter("engine.checkpoint_restores"),
            checkpoints_skipped: self.storage.counters.skipped,
            storage_retries: self.storage.counters.retries,
            spill_restreams: self.storage.counters.restreams,
            spilled_shards: metrics.counter("engine.spilled_shards"),
            spilled_bytes: metrics.counter("engine.spilled_bytes"),
            spill_loads: metrics.counter("engine.spill_loads"),
            spill_load_bytes: metrics.counter("engine.spill_load_bytes"),
            compression_codec: self.comp.as_ref().map(|c| c.codec().name()),
            compressed_bytes: metrics.counter("engine.compressed_bytes"),
            compressed_raw_bytes: metrics.counter("engine.compressed_raw_bytes"),
            decompress_launches: metrics.counter("engine.decompress_launches"),
            state_fingerprint: self
                .fingerprint
                .is_some()
                .then(|| snapshot::values_fingerprint(&self.host.vertex_values)),
            wall: self.wall.is_armed().then(|| self.wall.profile().summary()),
            per_iteration: self.host.iterations,
        };
        Ok(RunResult {
            vertex_values: self.host.vertex_values,
            edge_values: self.host.edge_values,
            stats,
        })
    }

    fn compute_iteration(&mut self, iter: u32) -> Vec<ShardWork> {
        let view = match &self.comp {
            Some(c) => c.view(self.layout),
            None => TopoView::raw(self.layout),
        };
        self.host.compute_iteration(
            self.program,
            view,
            &self.plan.shards,
            self.opts.host_kernels,
            self.opts.frontier_management,
            iter,
            &self.observer,
            &mut self.ctx.metrics,
            &self.wall,
        )
    }

    // ---------------- checkpoint / rollback / degraded mode ----------------

    /// One BSP iteration with fault recovery: checkpoint (only when a
    /// fault plan is armed), compute exact results on the host, emit the
    /// device timeline, and on a persistent fault restore the checkpoint
    /// and replay. The fault plan's monotone per-op counters guarantee a
    /// finite plan eventually stops faulting the replayed ops.
    fn run_iteration(&mut self, iter: u32) -> Result<(), EngineError> {
        if self.host_mode {
            return self.host_iteration(iter);
        }
        self.load_spilled(iter)?;
        // In-memory checkpoint before the attempt — skipped when a durable
        // snapshot already covers this exact boundary (the full-state
        // clone would duplicate what is safely on disk) and never taken
        // under CheckpointPolicy::Off.
        let durable_covers = self.durable.as_ref().is_some_and(|w| w.covers(iter));
        let ckpt = (self.fault_active && !durable_covers && !self.ckpt_off)
            .then(|| self.take_checkpoint());
        let mut replays = 0u32;
        loop {
            let work = self.compute_iteration(iter);
            let emitted = if self.opts.phase_fusion {
                self.emit_fused(iter, &work)
            } else {
                self.emit_unfused(iter, &work)
            };
            match emitted {
                Ok(()) => {
                    self.charge_host_shards(&work);
                    self.host.finish_iteration();
                    return Ok(());
                }
                Err(a) => {
                    replays += 1;
                    self.handle_abort(a, iter, replays)?;
                    if let Some(c) = ckpt.as_ref() {
                        self.restore(c);
                    } else if durable_covers {
                        self.restore_from_disk()?;
                    } else {
                        // CheckpointPolicy::Off with an armed fault plan:
                        // nothing to replay from.
                        return Err(EngineError::Unrecoverable { op: "checkpoint" });
                    }
                    if self.host_mode {
                        return self.host_iteration(iter);
                    }
                }
            }
        }
    }

    /// Delegate a durable snapshot of the current iteration boundary to
    /// the [`DurableWriter`] (no-op without a durable policy). Disk time
    /// is host-side and off the device timeline, so durable runs stay
    /// time-identical to in-memory-only runs.
    fn write_durable(&mut self, force: bool) -> Result<(), EngineError> {
        let Some(w) = self.durable.as_mut() else {
            return Ok(());
        };
        w.maybe_write(
            &self.host,
            force,
            &mut self.storage,
            &self.observer,
            &mut self.ctx.metrics,
        )
    }

    /// Replay-restore from the newest intact on-disk snapshot (taken when
    /// the in-memory clone was elided because a durable snapshot covers
    /// the boundary). Not a resume: no CheckpointRestore decision — the
    /// Rollback decision already records the replay.
    fn restore_from_disk(&mut self) -> Result<(), EngineError> {
        let w = self.durable.as_ref().expect("durable covers this boundary");
        let fp = self
            .fingerprint
            .as_ref()
            .expect("fingerprint computed whenever durable is armed");
        let r = snapshot_delta::load_newest::<P>(w.dir(), fp)?;
        self.host = HostState::restored(r.state);
        self.in_cached.fill(false);
        self.out_cached.fill(false);
        Ok(())
    }

    /// First touch of a spilled shard: read its payload back from the
    /// store (verifying frame integrity) and log one ShardLoad. Shards the
    /// frontier never activates are never read back — the point of
    /// spilling.
    fn load_spilled(&mut self, iter: u32) -> Result<(), EngineError> {
        if !self.any_spilled {
            return Ok(());
        }
        let store = self.store.clone().expect("spilled shards imply a store");
        for i in 0..self.plan.shards.len() {
            if !self.spilled[i] || self.spill_loaded[i] || self.host_shards[i] {
                continue;
            }
            if self.opts.frontier_management {
                let sh = &self.plan.shards[i];
                if !self
                    .host
                    .frontier
                    .any_in_range(sh.interval.start, sh.interval.end)
                {
                    continue;
                }
            }
            let Some(payload) = self.storage.spill_get(&store, i as u32, iter)? else {
                // Retries exhausted: re-stream the shard from the source
                // graph (the host-resident layout) — results unaffected,
                // the StorageDegraded decision records the detour.
                self.spill_loaded[i] = true;
                continue;
            };
            let bytes = payload.len() as u64;
            self.ctx.metrics.inc("engine.spill_loads", 1);
            self.ctx.metrics.inc("engine.spill_load_bytes", bytes);
            let store_name = store.name();
            self.observer.decision(|| Decision::ShardLoad {
                iteration: iter,
                shard: i as u32,
                bytes,
                store: store_name,
            });
            self.spill_loaded[i] = true;
        }
        Ok(())
    }

    fn take_checkpoint(&mut self) -> Checkpoint<P> {
        self.ctx.metrics.inc("engine.checkpoints", 1);
        self.host.checkpoint()
    }

    fn restore(&mut self, c: &Checkpoint<P>) {
        self.host.restore(c);
        // The faulted attempt may have moved only part of a shard: drop
        // all residency claims so the replay re-copies what it touches.
        self.in_cached.fill(false);
        self.out_cached.fill(false);
    }

    /// Central abort handling: device loss switches to host fallback (or
    /// fails the run when the policy forbids it); a persistent transient
    /// fault logs a [`Decision::Rollback`] so the caller replays from its
    /// checkpoint, bounded by [`REPLAY_CAP`].
    fn handle_abort(&mut self, a: Abort, iter: u32, replays: u32) -> Result<(), EngineError> {
        // Settle whatever the device finished before the fault; the time
        // the doomed attempt consumed stays on the clock — that work (and
        // its replay) is exactly what the counters record.
        self.ctx.sync_and_resolve();
        match a.fault {
            DeviceFault::Lost => {
                if !self.opts.recovery.host_fallback {
                    return Err(EngineError::DeviceLost);
                }
                self.ctx.metrics.inc("engine.host_fallback", 1);
                self.observer.decision(|| Decision::HostFallback {
                    iteration: iter,
                    device: 0,
                    rationale: "device lost: resuming on host CPU from last checkpoint",
                });
                self.host_mode = true;
                Ok(())
            }
            fault => roll_back(
                &self.observer,
                &mut self.ctx.metrics,
                iter,
                replays,
                0,
                a.op,
                fault,
            ),
        }
    }

    /// Governor-degraded shards: their slice of the iteration's work is
    /// charged on the host CPU with the same roofline model as full host
    /// fallback, once per *successful* iteration (replays re-charge the
    /// device work they redo, not the host's). Results are unaffected —
    /// the host computes every shard's results regardless.
    fn charge_host_shards(&mut self, work: &[ShardWork]) {
        if !self.any_host_shards {
            return;
        }
        let mut edges = 0u64;
        let mut vertices = 0u64;
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                edges += w.active_in_edges + w.out_edges_of_changed;
                vertices += w.active_vertices + w.changed_vertices;
            }
        }
        if vertices + edges == 0 {
            return;
        }
        let cw = host_work("host.shard", vertices, edges, &self.sizes);
        self.host_time +=
            self.host_cfg.pass_overhead + cpu_time(&self.host_cfg, self.host_cfg.cores, &cw);
    }

    /// Degraded mode after device loss: the iteration both computes *and
    /// is charged* on the host CPU, with the same roofline model the CPU
    /// baseline engines use. Results stay bit-identical — the host was
    /// computing them all along.
    fn host_iteration(&mut self, iter: u32) -> Result<(), EngineError> {
        let work = self.compute_iteration(iter);
        let edges: u64 = work
            .iter()
            .map(|w| w.active_in_edges + w.out_edges_of_changed)
            .sum();
        let vertices: u64 = work
            .iter()
            .map(|w| w.active_vertices + w.changed_vertices)
            .sum();
        let cw = host_work("host.fallback", vertices, edges, &self.sizes);
        self.host_time +=
            self.host_cfg.pass_overhead + cpu_time(&self.host_cfg, self.host_cfg.cores, &cw);
        self.host.finish_iteration();
        Ok(())
    }

    // ---------------- device timeline emission ----------------

    fn emit_init(&mut self) -> Result<(), EngineError> {
        // Governor whole-run host mode: nothing lives on the device, so
        // there is nothing to initialize (mirrors emit_finalize).
        if self.host_mode {
            return Ok(());
        }
        let mut replays = 0u32;
        loop {
            match self.try_emit_init() {
                Ok(()) => return Ok(()),
                Err(a) => {
                    // Nothing to roll back before iteration 0: the initial
                    // host state *is* the checkpoint.
                    replays += 1;
                    self.handle_abort(a, 0, replays)?;
                    if self.host_mode {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn try_emit_init(&mut self) -> Result<(), Abort> {
        let s = self.ctx.main_streams[0];
        let vbytes = self.layout.num_vertices() as u64 * self.sizes.vertex_value;
        self.ctx.h2d(s, vbytes, "init.vertices", 0)?;
        // Gather-temp and frontier bitmaps are initialized on-device.
        let spec = KernelSpec::balanced(
            "init.memset",
            self.layout.num_vertices() as u64,
            1.0,
            self.plan.static_bytes,
            0,
        );
        self.ctx.launch(s, &spec, 0)?;
        self.ctx.synchronize();
        Ok(())
    }

    fn emit_finalize(&mut self) -> Result<(), EngineError> {
        // After host fallback the results are host-resident already (and
        // the device is gone): nothing to download.
        if self.host_mode {
            return Ok(());
        }
        let iter = self.host.iterations.len() as u32;
        let mut replays = 0u32;
        loop {
            match self.try_emit_finalize(iter) {
                Ok(()) => return Ok(()),
                Err(a) => {
                    replays += 1;
                    self.handle_abort(a, iter, replays)?;
                    if self.host_mode {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn try_emit_finalize(&mut self, iter: u32) -> Result<(), Abort> {
        let s = self.ctx.main_streams[0];
        let vbytes = self.layout.num_vertices() as u64 * self.sizes.vertex_value;
        self.ctx.d2h(s, vbytes, "final.vertices", iter)?;
        if self.program.has_scatter() {
            let ebytes = self.layout.num_edges() * self.sizes.edge_value;
            self.ctx.d2h(s, ebytes, "final.edges", iter)?;
        }
        self.ctx.synchronize();
        Ok(())
    }

    fn stream_for(&self, i: usize) -> StreamId {
        if self.opts.async_streams {
            self.ctx.main_streams[i % self.ctx.main_streams.len()]
        } else {
            self.ctx.main_streams[0]
        }
    }

    /// Optimized pipeline: fusion + elimination collapse each iteration
    /// into (at most) a gather stage, an apply stage, and a
    /// scatter+activate stage, each copying a shard's data once.
    fn emit_fused(&mut self, iter: u32, work: &[ShardWork]) -> Result<(), Abort> {
        // Stage A: gather (eliminated entirely for gather-less programs —
        // no in-edge movement, no kernels).
        if self.program.has_gather() {
            for (i, w) in work.iter().enumerate() {
                if self.host_shards[i] {
                    continue; // computed (and charged) on the host CPU
                }
                if self.opts.frontier_management && !w.is_active() {
                    if !self.in_cached[i] {
                        self.ctx.metrics.inc("engine.skipped_shard_copies", 1);
                    }
                    self.ctx.metrics.inc("engine.skipped_kernel_launches", 2);
                    continue;
                }
                let stream = self.stream_for(i);
                if !self.in_cached[i] {
                    let bufs = self.in_buf_sets[i];
                    self.movement
                        .copy_in(&mut self.ctx, i, stream, bufs.as_slice(), iter)?;
                    self.decompress(i, stream, iter, true)?;
                    if self.resident {
                        self.in_cached[i] = true;
                    }
                }
                let (map, reduce) = self.specs.gather_specs(i, w);
                self.ctx.launch_tracked(stream, &map, iter, i)?;
                if let Some(spec) = reduce {
                    self.ctx.launch_tracked(stream, &spec, iter, i)?;
                }
            }
            self.ctx.sync_and_resolve();
        }

        // Stage B: apply (fused with gather's residency: temps never move).
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if self.opts.frontier_management && !w.is_active() {
                self.ctx.metrics.inc("engine.skipped_kernel_launches", 1);
                continue;
            }
            let stream = self.stream_for(i);
            let spec = self.specs.apply_spec(w);
            self.ctx.launch_tracked(stream, &spec, iter, i)?;
        }
        self.ctx.sync_and_resolve();

        // Stage C: scatter + FrontierActivate share one out-edge copy.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if self.opts.frontier_management && w.out_edges_of_changed == 0 {
                if !self.out_cached[i] {
                    self.ctx.metrics.inc("engine.skipped_shard_copies", 1);
                }
                self.ctx.metrics.inc(
                    "engine.skipped_kernel_launches",
                    if self.program.has_scatter() { 2 } else { 1 },
                );
                continue;
            }
            let stream = self.stream_for(i);
            if !self.out_cached[i] {
                let bufs = self.out_buf_sets[i];
                self.movement
                    .copy_in(&mut self.ctx, i, stream, bufs.as_slice(), iter)?;
                self.decompress(i, stream, iter, false)?;
                if self.resident {
                    self.out_cached[i] = true;
                }
            }
            if self.program.has_scatter() {
                let spec = self.specs.scatter_spec(i, w);
                self.ctx.launch_tracked(stream, &spec, iter, i)?;
            }
            let spec = self.specs.activate_spec(i, w);
            self.ctx.launch_tracked(stream, &spec, iter, i)?;
            // Copy-outs: mutated edge values (unless resident — they are
            // fetched once at finalize) and the tiny frontier bitmap.
            let bits = self.frontier_bits_bufs[i];
            if self.program.has_scatter() && !self.resident {
                let vals = (
                    w.out_edges_of_changed * self.sizes.edge_value,
                    "out.value.d2h",
                );
                self.movement
                    .copy_out(&mut self.ctx, i, stream, &[vals, bits], iter)?;
            } else {
                self.movement
                    .copy_out(&mut self.ctx, i, stream, &[bits], iter)?;
            }
        }
        self.ctx.sync_and_resolve();
        Ok(())
    }

    /// Unoptimized mode: five separate phases, each moving the shard data
    /// it touches in *and* out, for every shard, every iteration — the
    /// Figure 15 baseline.
    fn emit_unfused(&mut self, iter: u32, work: &[ShardWork]) -> Result<(), Abort> {
        let has_gather = self.program.has_gather();
        let has_scatter = self.program.has_scatter();
        let skip = |this: &Self, w: &ShardWork| this.opts.frontier_management && !w.is_active();

        // Phase 1: gatherMap — full in-edge sub-arrays in (even for
        // gather-less programs: this is exactly the movement phase
        // elimination removes), per-edge update array out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let bufs = self.in_buf_sets[i];
            self.movement
                .copy_in(&mut self.ctx, i, stream, bufs.as_slice(), iter)?;
            self.decompress(i, stream, iter, true)?;
            if has_gather {
                let (map, _) = self.specs.gather_specs(i, w);
                self.ctx.launch_tracked(stream, &map, iter, i)?;
            }
            let upd = self.edge_update_bufs[i];
            self.movement
                .copy_out(&mut self.ctx, i, stream, &[upd], iter)?;
        }
        self.ctx.sync_and_resolve();

        // Phase 2: gatherReduce — the per-edge update array comes back in,
        // reduced per-vertex temps go out. Fusion makes both moves vanish
        // (the array never leaves the device between the two kernels).
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let upd = self.edge_update_bufs[i];
            self.movement
                .copy_in(&mut self.ctx, i, stream, &[upd], iter)?;
            if has_gather {
                let (_, reduce) = self.specs.gather_specs(i, w);
                if let Some(reduce) = reduce {
                    self.ctx.launch_tracked(stream, &reduce, iter, i)?;
                }
            }
            let t = self.gather_temp_bufs[i];
            self.movement
                .copy_out(&mut self.ctx, i, stream, &[t], iter)?;
        }
        self.ctx.sync_and_resolve();

        // Phase 3: apply — temps + vertex interval in, vertex interval out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let vbuf = self.apply_vertex_bufs[i];
            let t = self.gather_temp_bufs[i];
            self.movement
                .copy_in(&mut self.ctx, i, stream, &[t, vbuf], iter)?;
            let spec = self.specs.apply_spec(w);
            self.ctx.launch_tracked(stream, &spec, iter, i)?;
            self.movement
                .copy_out(&mut self.ctx, i, stream, &[vbuf], iter)?;
        }
        self.ctx.sync_and_resolve();

        // Phase 4: scatter — full out-edge arrays in, values out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let bufs = self.out_buf_sets[i];
            self.movement
                .copy_in(&mut self.ctx, i, stream, bufs.as_slice(), iter)?;
            self.decompress(i, stream, iter, false)?;
            if has_scatter {
                let spec = self.specs.scatter_spec(i, w);
                self.ctx.launch_tracked(stream, &spec, iter, i)?;
                let vals: Buf = (
                    self.plan.shards[i].num_out_edges() * self.sizes.edge_value,
                    "out.value.d2h",
                );
                self.movement
                    .copy_out(&mut self.ctx, i, stream, &[vals], iter)?;
            }
        }
        self.ctx.sync_and_resolve();

        // Phase 5: FrontierActivate — out-edge topology in (again), bits out.
        for (i, w) in work.iter().enumerate() {
            if self.host_shards[i] {
                continue;
            }
            if skip(self, w) {
                self.skip_phase();
                continue;
            }
            let stream = self.stream_for(i);
            let dst = self.out_dst_bufs[i];
            self.movement
                .copy_in(&mut self.ctx, i, stream, &[dst], iter)?;
            self.decompress(i, stream, iter, false)?;
            let spec = self.specs.activate_spec(i, w);
            self.ctx.launch_tracked(stream, &spec, iter, i)?;
            let bits = self.frontier_bits_bufs[i];
            self.movement
                .copy_out(&mut self.ctx, i, stream, &[bits], iter)?;
        }
        self.ctx.sync_and_resolve();
        Ok(())
    }

    /// Price the on-device decode of a just-streamed topology gap stream:
    /// one `decompress` kernel reading the compressed bits and feeding the
    /// decoded entries to the consuming kernels through on-chip memory,
    /// plus one DecompressShard decision. No-op without compression — the
    /// raw paths stay op-for-op identical.
    fn decompress(
        &mut self,
        i: usize,
        stream: StreamId,
        iter: u32,
        in_edges: bool,
    ) -> Result<(), Abort> {
        let Some(c) = &self.comp else {
            return Ok(());
        };
        let sh = &self.plan.shards[i];
        let (edges, z) = if in_edges {
            (sh.num_in_edges(), c.csc_bytes(sh))
        } else {
            (sh.num_out_edges(), c.csr_bytes(sh))
        };
        if edges == 0 {
            return Ok(());
        }
        let spec = self.specs.decompress_spec(i, edges, z, in_edges);
        self.ctx.launch_tracked(stream, &spec, iter, i)?;
        self.ctx.metrics.inc("engine.decompress_launches", 1);
        let raw = edges * RAW_TOPO_ENTRY_BYTES;
        self.observer.decision(|| Decision::DecompressShard {
            iteration: iter,
            shard: i as u32,
            compressed_bytes: z,
            raw_bytes: raw,
        });
        Ok(())
    }

    /// One skipped phase of the unfused pipeline: one shard copy and one
    /// kernel launch that never happened.
    fn skip_phase(&mut self) {
        self.ctx.metrics.inc("engine.skipped_shard_copies", 1);
        self.ctx.metrics.inc("engine.skipped_kernel_launches", 1);
    }
}

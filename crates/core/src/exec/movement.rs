//! Data Movement Engine: shard copy-in/copy-out over PCIe.
//!
//! Owns the streaming policy a run was configured and governed into —
//! explicit staged copies, spray copies over cycled streams, zero-copy
//! sequential access, bounded chunking through the staging slot, and the
//! out-of-host-core storage stall. Every byte that crosses the link goes
//! through `Movement::copy_in`/`Movement::copy_out`; the ops
//! themselves are issued via [`DeviceCtx`] so
//! the fault-retry path is shared.

use gr_graph::Shard;
use gr_sim::{SimDuration, StreamId};

use crate::options::{Options, StreamingMode};
use crate::sizes::SizeModel;

use super::device::{Abort, DeviceCtx};

/// One buffer of a shard copy: (bytes, trace label).
pub(crate) type Buf = (u64, &'static str);

/// A shard's fixed buffer list, precomputed once per run (satellite of the
/// sparse-kernels PR: the per-iteration `Vec<Buf>` rebuilds were pure
/// allocator churn). Stack-inline and `Copy` so the emit loops can grab a
/// shard's set without borrowing the driver.
#[derive(Clone, Copy, Default)]
pub(crate) struct BufSet {
    n: usize,
    bufs: [Buf; 4],
}

impl BufSet {
    pub(crate) fn push(&mut self, b: Buf) {
        self.bufs[self.n] = b;
        self.n += 1;
    }

    pub(crate) fn as_slice(&self) -> &[Buf] {
        &self.bufs[..self.n]
    }
}

/// In-edge sub-arrays of a shard: source ids, static weights, mutable
/// edge values. `force` includes them even when the program has no gather
/// (the unoptimized mode's behaviour that phase elimination removes).
pub(crate) fn in_bufs_for(sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
    let mut set = BufSet::default();
    if !sizes.has_gather && !force {
        return set;
    }
    let e = sh.num_in_edges();
    set.push((e * 12, "in.topo"));
    set.push((e * (sizes.gather + 4), "in.update"));
    set.push((e * 16, "in.state"));
    if sizes.edge_value > 0 {
        set.push((e * sizes.edge_value, "in.value"));
    }
    set
}

/// Out-edge sub-arrays: destination ids always (FrontierActivate needs
/// the topology regardless — Section 5.3), canonical ids + mutable
/// values when scattering (or when `force`d by unoptimized mode).
pub(crate) fn out_bufs_for(sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
    let e = sh.num_out_edges();
    let mut set = BufSet::default();
    set.push((e * 12, "out.topo"));
    set.push((e * 8, "out.state"));
    if (sizes.has_scatter || force) && sizes.edge_value > 0 {
        set.push((e * sizes.edge_value, "out.value"));
    }
    set
}

/// The movement policy for one run: how shard buffers cross PCIe.
pub struct Movement {
    spray: bool,
    spray_width: u32,
    streaming_mode: StreamingMode,
    // Out-of-host-core: graphs beyond host DRAM stream shards from
    // storage before they can cross PCIe.
    storage_read_secs_per_byte: Option<f64>,
    storage_latency: SimDuration,
    // Memory governor outcome: shards streamed in bounded chunks through
    // the staging slot, and the per-slot staging size chunks cut to.
    chunked: Vec<bool>,
    staging_bytes: u64,
    // Out-of-host-core spill: shards whose topology was evicted to the
    // shard store pay a storage read on their *first* stream-in — the
    // driver reads each spilled blob back exactly once per run
    // (`load_spilled`), after which the shard is host-resident, so later
    // stream-ins are plain PCIe copies. Takes precedence over the blanket
    // `storage_read_secs_per_byte` (which models a host that mmaps the
    // whole graph from storage with no store configured and re-reads on
    // every pass).
    spilled: Vec<bool>,
    spill_charged: Vec<bool>,
    spill_read_secs_per_byte: Option<f64>,
}

impl Movement {
    /// Assemble the movement policy from the run options, the governed
    /// chunking outcome, and the host-memory tier.
    pub(crate) fn new(
        opts: &Options,
        chunked: Vec<bool>,
        staging_bytes: u64,
        storage_read_secs_per_byte: Option<f64>,
        storage_latency: SimDuration,
    ) -> Self {
        let num_shards = chunked.len();
        Movement {
            spray: opts.spray,
            spray_width: opts.spray_width,
            streaming_mode: opts.streaming_mode,
            storage_read_secs_per_byte,
            storage_latency,
            chunked,
            staging_bytes,
            spilled: vec![false; num_shards],
            spill_charged: vec![false; num_shards],
            spill_read_secs_per_byte: None,
        }
    }

    /// Arm the spill rung: `spilled` shards charge one storage read on
    /// first stream-in, and the blanket whole-graph storage stall (if
    /// any) is dropped — spilled shards are charged precisely instead.
    /// A shard therefore pays exactly one of `spill.read` or `ssd.read`
    /// per load, never both and never twice.
    pub(crate) fn set_spilled(&mut self, spilled: Vec<bool>, read_secs_per_byte: f64) {
        self.spilled = spilled;
        self.spill_read_secs_per_byte = Some(read_secs_per_byte);
        self.storage_read_secs_per_byte = None;
    }

    /// Copy a shard's buffers host→device on (or sprayed around) `stream`,
    /// each copy routed through the fault-retry path. When the graph
    /// exceeds host memory, the shard is first read from storage into the
    /// host's streaming window. Governor-chunked shards stream each
    /// sub-array in bounded pieces through the reusable staging slot
    /// instead of landing whole (and never spray — the slot is the
    /// contention point).
    pub(crate) fn copy_in(
        &mut self,
        ctx: &mut DeviceCtx,
        shard: usize,
        stream: StreamId,
        bufs: &[Buf],
        iter: u32,
    ) -> Result<(), Abort> {
        if bufs.is_empty() {
            return Ok(());
        }
        if self.spilled[shard] {
            // One stall per run: the store read happens once; after it
            // the payload sits in host RAM (the latch mirrors the
            // driver's `spill_loaded`). Charging it per stream-in
            // double-counted the spill on every revisit.
            if !self.spill_charged[shard] {
                if let Some(per_byte) = self.spill_read_secs_per_byte {
                    let bytes: u64 = bufs.iter().map(|b| b.0).sum();
                    let dur =
                        self.storage_latency + SimDuration::from_secs_f64(bytes as f64 * per_byte);
                    ctx.stall(stream, dur, "spill.read");
                    ctx.metrics.inc("engine.spill_stalls", 1);
                    self.spill_charged[shard] = true;
                }
            }
        } else if let Some(per_byte) = self.storage_read_secs_per_byte {
            let bytes: u64 = bufs.iter().map(|b| b.0).sum();
            let dur = self.storage_latency + SimDuration::from_secs_f64(bytes as f64 * per_byte);
            ctx.stall(stream, dur, "ssd.read");
            ctx.metrics.inc("engine.ssd_stalls", 1);
        }
        if self.chunked[shard] {
            for &(bytes, label) in bufs {
                let mut left = bytes;
                while left > 0 {
                    let b = self.staging_bytes.min(left);
                    left -= b;
                    ctx.h2d(stream, b, label, iter)?;
                    ctx.metrics.inc("engine.chunked_copies", 1);
                }
            }
            return Ok(());
        }
        if self.streaming_mode == StreamingMode::ZeroCopySequential {
            // Zero-copy: the consuming kernels stream the buffers over
            // PCIe directly; the link is occupied for the access volume
            // but no staging DMA or per-copy latency is paid. GR's sorted
            // shard layout makes every streamed buffer sequential, so the
            // pinned-sequential rate applies (Figure 4's best case).
            for &(bytes, label) in bufs {
                if bytes > 0 {
                    ctx.h2d_zero_copy(stream, bytes, label, iter)?;
                }
            }
            return Ok(());
        }
        if self.spray && ctx.has_spray() {
            // Spray: split every sub-array over dynamically cycled streams;
            // the consuming stream waits on each piece's event.
            let chunks = (self.spray_width.max(1) as usize / bufs.len()).max(1);
            for &(bytes, label) in bufs {
                if bytes == 0 {
                    continue;
                }
                let per = bytes.div_ceil(chunks as u64);
                let mut left = bytes;
                while left > 0 {
                    let b = per.min(left);
                    left -= b;
                    let ss = ctx.next_spray_stream();
                    ctx.h2d(ss, b, label, iter)?;
                    ctx.fence(ss, stream);
                }
            }
        } else {
            for &(bytes, label) in bufs {
                if bytes > 0 {
                    ctx.h2d(stream, bytes, label, iter)?;
                }
            }
        }
        Ok(())
    }

    /// Copy a shard's buffers device→host after the work on `stream`,
    /// chunked through the staging slot for governor-chunked shards.
    pub(crate) fn copy_out(
        &self,
        ctx: &mut DeviceCtx,
        shard: usize,
        stream: StreamId,
        bufs: &[Buf],
        iter: u32,
    ) -> Result<(), Abort> {
        if self.chunked[shard] {
            for &(bytes, label) in bufs {
                let mut left = bytes;
                while left > 0 {
                    let b = self.staging_bytes.min(left);
                    left -= b;
                    ctx.d2h(stream, b, label, iter)?;
                    ctx.metrics.inc("engine.chunked_copies", 1);
                }
            }
            return Ok(());
        }
        for &(bytes, label) in bufs {
            if bytes > 0 {
                ctx.d2h(stream, bytes, label, iter)?;
            }
        }
        Ok(())
    }
}

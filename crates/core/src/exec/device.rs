//! Device context: the one execution layer that touches `gr-sim` ops.
//!
//! A [`DeviceCtx`] owns one virtual [`Gpu`] together with everything the
//! engine attaches to it — streams, held allocations, the fault-retry
//! loop, the per-device metrics registry, and the pending-kernel list
//! whose resolved time windows become engine-track spans. Both the
//! single-GPU driver ([`crate::exec::driver`]) and the multi-GPU
//! orchestrator ([`crate::multi`]) emit their timelines exclusively
//! through these wrappers, so retry/backoff semantics exist exactly once:
//! identical fault schedules charge identical simulated recovery time on
//! either path (see `docs/ARCHITECTURE.md`).

use gr_observe::{Decision, InstantEvent, MetricsRegistry, Observer, SpanEvent};
use gr_sim::{
    Allocation, DeviceFault, FaultPlan, Gpu, GpuStats, KernelSpec, OpId, Platform, SimDuration,
    StreamId,
};

use crate::recovery::{EngineError, RecoveryPolicy};

/// A device operation that failed past its retry budget (or hit a lost
/// device), unwinding the current timeline emission for rollback handling.
pub struct Abort {
    /// Index of the device the op failed on (always 0 on the single path).
    pub device: usize,
    /// Trace label of the failing op.
    pub op: &'static str,
    /// The fault that ended the retry loop.
    pub fault: DeviceFault,
}

/// One virtual device plus the engine-side state bound to it. The only
/// type in the `exec` tree allowed to call `gr-sim` operations.
pub struct DeviceCtx {
    gpu: Gpu,
    device: usize,
    recovery: RecoveryPolicy,
    /// Compute/copy streams; `exec` siblings index these for stage
    /// scheduling but route every op back through the ctx.
    pub(crate) main_streams: Vec<StreamId>,
    spray_streams: Vec<StreamId>,
    spray_cursor: usize,
    /// Engine-level metrics for this device (skip counters, retries, …).
    /// On the single path this is the registry `RunStats` reads; the
    /// multi orchestrator keeps one per device.
    pub(crate) metrics: MetricsRegistry,
    observer: Observer,
    // Kernel launches awaiting their resolved virtual-time window
    // (emitted as engine-track spans after the stage synchronizes).
    pending_kernels: Vec<(OpId, &'static str, u32, u32)>,
    // Device allocations held for the run (RAII keeps capacity accounted).
    pub(crate) static_alloc: Option<Allocation>,
    pub(crate) shard_allocs: Vec<Allocation>,
}

impl DeviceCtx {
    /// Bring up one device: create the [`Gpu`], attach the observer
    /// (tagged per device lane when `tag` is given, e.g. `"gpu1/"`), arm
    /// the fault plan, and apply the optional memory cap — in that order,
    /// matching the timeline the pre-refactor engines emitted.
    ///
    /// `observer` doubles as the decision-log sink; decisions are never
    /// tagged (the device index is a field of the decision itself).
    pub fn new(
        platform: &Platform,
        device: usize,
        observer: Observer,
        tag: Option<String>,
        fault_plan: FaultPlan,
        mem_cap: Option<u64>,
        recovery: RecoveryPolicy,
    ) -> Self {
        let mut gpu = Gpu::new(platform);
        match tag {
            Some(t) => gpu.set_observer_tagged(observer.clone(), t),
            None => gpu.set_observer(observer.clone()),
        }
        gpu.set_fault_plan(fault_plan);
        if let Some(cap) = mem_cap {
            gpu.cap_memory(cap);
        }
        DeviceCtx {
            gpu,
            device,
            recovery,
            main_streams: Vec::new(),
            spray_streams: Vec::new(),
            spray_cursor: 0,
            metrics: MetricsRegistry::new(),
            observer,
            pending_kernels: Vec::new(),
            static_alloc: None,
            shard_allocs: Vec::new(),
        }
    }

    /// Device index this context was created with.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Create `k` main compute/copy streams. Streams must exist before
    /// allocations: allocation-retry backoff stalls are charged on one.
    pub fn create_main_streams(&mut self, k: usize) {
        self.main_streams = (0..k).map(|_| self.gpu.create_stream()).collect();
    }

    /// Create `n` spray streams for scattered sub-array copies.
    pub fn create_spray_streams(&mut self, n: usize) {
        self.spray_streams = (0..n).map(|_| self.gpu.create_stream()).collect();
    }

    /// Whether spray streams were created for this device.
    pub fn has_spray(&self) -> bool {
        !self.spray_streams.is_empty()
    }

    /// Next spray stream in the dynamic cycle (Section 5.1's spray copy).
    pub fn next_spray_stream(&mut self) -> StreamId {
        let s = self.spray_streams[self.spray_cursor % self.spray_streams.len()];
        self.spray_cursor += 1;
        s
    }

    /// Make `consumer` wait for everything issued so far on `producer`
    /// (event record + wait, the spray path's synchronization).
    pub fn fence(&mut self, producer: StreamId, consumer: StreamId) {
        let ev = self.gpu.record_event(producer);
        self.gpu.wait_event(consumer, ev);
    }

    /// Run one device op through the recovery policy: each transient fault
    /// retries after an exponential-backoff stall (charged to `stream` as
    /// simulated time, counted in `engine.fault_retries`, logged as
    /// [`Decision::FaultRetry`] with this device's index); exhausted
    /// retries and device loss unwind as [`Abort`] for rollback handling.
    /// With no fault plan armed the closure succeeds on the first call and
    /// this is exactly one extra branch.
    pub fn retry<F>(
        &mut self,
        stream: StreamId,
        label: &'static str,
        iter: u32,
        mut op: F,
    ) -> Result<OpId, Abort>
    where
        F: FnMut(&mut Gpu) -> Result<OpId, DeviceFault>,
    {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.gpu) {
                Ok(id) => return Ok(id),
                Err(DeviceFault::Lost) => {
                    return Err(Abort {
                        device: self.device,
                        op: label,
                        fault: DeviceFault::Lost,
                    })
                }
                Err(fault) => {
                    attempt += 1;
                    if attempt > self.recovery.max_retries {
                        return Err(Abort {
                            device: self.device,
                            op: label,
                            fault,
                        });
                    }
                    let backoff = self.recovery.backoff(attempt);
                    self.gpu.stall(stream, backoff, "recovery.backoff");
                    self.metrics.inc("engine.fault_retries", 1);
                    let backoff_ns = backoff.as_nanos();
                    let device = self.device as u32;
                    self.observer.decision(|| Decision::FaultRetry {
                        iteration: iter,
                        device,
                        op: label,
                        fault: fault.name(),
                        attempt,
                        backoff_ns,
                    });
                }
            }
        }
    }

    /// Host→device copy through the retry path.
    pub fn h2d(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
        iter: u32,
    ) -> Result<OpId, Abort> {
        self.retry(stream, label, iter, |g| g.try_h2d(stream, bytes, label))
    }

    /// Zero-copy host→device access through the retry path.
    pub fn h2d_zero_copy(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
        iter: u32,
    ) -> Result<OpId, Abort> {
        self.retry(stream, label, iter, |g| {
            g.try_h2d_zero_copy(stream, bytes, label)
        })
    }

    /// Device→host copy through the retry path.
    pub fn d2h(
        &mut self,
        stream: StreamId,
        bytes: u64,
        label: &'static str,
        iter: u32,
    ) -> Result<OpId, Abort> {
        self.retry(stream, label, iter, |g| g.try_d2h(stream, bytes, label))
    }

    /// Kernel launch through the retry path.
    pub fn launch(
        &mut self,
        stream: StreamId,
        spec: &KernelSpec,
        iter: u32,
    ) -> Result<OpId, Abort> {
        self.retry(stream, spec.label, iter, |g| g.try_launch(stream, spec))
    }

    /// Launch a kernel and remember its op so the resolved window can be
    /// emitted as an engine-track span after the stage barrier.
    pub fn launch_tracked(
        &mut self,
        stream: StreamId,
        spec: &KernelSpec,
        iter: u32,
        shard: usize,
    ) -> Result<(), Abort> {
        let op = self.launch(stream, spec, iter)?;
        if self.observer.is_enabled() {
            self.pending_kernels
                .push((op, spec.label, iter, shard as u32));
        }
        Ok(())
    }

    /// Charge a fixed stall (e.g. a storage read) on `stream`.
    pub fn stall(&mut self, stream: StreamId, duration: SimDuration, label: &'static str) {
        self.gpu.stall(stream, duration, label);
    }

    /// Flush the device timeline to its next quiescent point.
    pub fn synchronize(&mut self) {
        self.gpu.synchronize();
    }

    /// Device barrier + emission of every pending kernel's span with
    /// its real virtual-time window (known only after the flush).
    pub fn sync_and_resolve(&mut self) {
        self.gpu.synchronize();
        for (op, label, iter, shard) in std::mem::take(&mut self.pending_kernels) {
            if let Some((start, finish)) = self.gpu.op_window(op) {
                self.observer.span(|| SpanEvent {
                    track: "engine",
                    lane: format!("shard {shard}"),
                    name: label.to_string(),
                    start_ns: start,
                    dur_ns: finish - start,
                    fields: vec![("iteration", iter.into()), ("shard", shard.into())],
                });
            }
        }
    }

    /// Allocate device memory through the recovery policy. Injected
    /// allocation pressure backs off (charged as simulated time on
    /// `stream`) and retries; a *real* shortfall — the request exceeds
    /// what the pool can ever grant — will never succeed on retry and
    /// surfaces [`EngineError::Alloc`] immediately instead of burning the
    /// budget.
    pub fn alloc_retry(&mut self, stream: StreamId, bytes: u64) -> Result<Allocation, EngineError> {
        let mut attempt = 0u32;
        loop {
            match self.gpu.try_alloc(bytes) {
                Ok(a) => return Ok(a),
                Err(oom) => {
                    // Injected pressure synthesizes `available: 0` while
                    // the real pool still has room; when the request
                    // genuinely exceeds the pool's free bytes, no amount
                    // of backoff can help — escalate immediately instead
                    // of spinning through the retry budget.
                    if bytes > self.gpu.memory().available() {
                        return Err(EngineError::Alloc(oom));
                    }
                    attempt += 1;
                    if attempt > self.recovery.max_retries {
                        return Err(EngineError::Alloc(oom));
                    }
                    let backoff = self.recovery.backoff(attempt);
                    self.gpu.stall(stream, backoff, "recovery.backoff");
                    self.metrics.inc("engine.fault_retries", 1);
                    let backoff_ns = backoff.as_nanos();
                    let device = self.device as u32;
                    self.observer.decision(|| Decision::FaultRetry {
                        iteration: 0,
                        device,
                        op: "alloc",
                        fault: "alloc.pressure",
                        attempt,
                        backoff_ns,
                    });
                }
            }
        }
    }

    /// Simulated time elapsed on this device.
    pub fn elapsed(&self) -> SimDuration {
        self.gpu.elapsed()
    }

    /// End-of-run device statistics.
    pub fn stats(&self) -> GpuStats {
        self.gpu.stats()
    }

    /// Faults the device's plan injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.gpu.faults_injected()
    }

    /// The device's (possibly capped) memory capacity.
    pub fn mem_capacity(&self) -> u64 {
        self.gpu.memory().capacity()
    }

    /// Peak device-memory usage over the run.
    pub fn mem_peak(&self) -> u64 {
        self.gpu.memory().peak()
    }

    /// Smallest free-memory margin observed over the run.
    pub fn mem_min_headroom(&self) -> u64 {
        self.gpu.memory().min_headroom()
    }

    /// The device-side metrics registry (op counters, byte volumes).
    pub fn gpu_metrics(&self) -> &MetricsRegistry {
        self.gpu.metrics()
    }
}

/// Advance all devices to their next barrier; return the stage duration
/// (the slowest device's progress — devices run concurrently).
pub fn barrier(ctxs: &mut [DeviceCtx]) -> SimDuration {
    let mut stage = SimDuration::ZERO;
    for c in ctxs.iter_mut() {
        let before = c.gpu.elapsed();
        c.gpu.synchronize();
        stage = stage.max(c.gpu.elapsed() - before);
    }
    stage
}

/// [`barrier`], plus a `"multi"`-track instant marking where the aligned
/// global clock lands after the stage.
pub fn barrier_observed(
    ctxs: &mut [DeviceCtx],
    global: &mut SimDuration,
    stage: &'static str,
    observer: &Observer,
) {
    *global += barrier(ctxs);
    let at = global.as_nanos();
    observer.instant(|| InstantEvent {
        track: "multi",
        lane: "barriers".to_string(),
        name: format!("barrier {stage}"),
        at_ns: at,
        fields: vec![("stage", stage.into())],
    });
}

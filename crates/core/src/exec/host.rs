//! Host master state: the exact, eagerly computed results every run
//! produces regardless of what the virtual device timeline does. One per
//! run — the multi orchestrator shares this single copy across its
//! devices (vertex state is replicated, so host truth is global).
//!
//! This is the real-compute half of the driver layer: the BSP iteration
//! over the GAS phase kernels (`crates/core/src/phases.rs`), fanned out
//! across shards on host threads when available. Each per-shard phase
//! execution is wrapped in a `WallProfiler` scope keyed by (iteration,
//! shard, phase, resolved kernel shape), so armed runs attribute real
//! milliseconds to the Serial/Dense/Sparse choices — disarmed, each
//! scope is one branch (see `gr-observe`'s overhead guard).

use gr_graph::{Bitmap, GraphLayout, Shard, TopoView};
use gr_observe::profiler::{WALL_ITERATION, WALL_NO_SHARD};
use gr_observe::{Decision, MetricsRegistry, Observer, WallKey, WallProfiler};

use crate::api::{GasProgram, InitialFrontier};
use crate::checkpoint::Checkpoint;
use crate::engine::WarmStart;
use crate::options::HostKernels;
use crate::phases::{
    activate_shard, apply_shard, gather_shard, scatter_shard, shape_name, ShardWork,
};
use crate::stats::IterationStats;

/// Wall-scope key for one shard's slice of a GAS phase: the shape is
/// resolved exactly as the kernel will resolve it (same driving-bitmap
/// count, same interval), so attribution never disagrees with execution.
/// Only called from inside an armed scope's key closure.
fn phase_key(
    iter: u32,
    shard: u32,
    phase: &'static str,
    mode: HostKernels,
    driving: &Bitmap,
    sh: &Shard,
) -> WallKey {
    WallKey {
        iteration: iter,
        shard,
        phase,
        shape: shape_name(
            mode,
            driving.count_range(sh.interval.start, sh.interval.end),
            sh.interval.len() as u64,
        ),
    }
}

pub(crate) struct HostState<P: GasProgram> {
    pub(crate) vertex_values: Vec<P::VertexValue>,
    pub(crate) edge_values: Vec<P::EdgeValue>,
    pub(crate) gather_temp: Vec<P::Gather>,
    pub(crate) frontier: Bitmap,
    pub(crate) changed: Bitmap,
    pub(crate) next_frontier: Bitmap,
    pub(crate) iterations: Vec<IterationStats>,
}

impl<P: GasProgram> HostState<P> {
    /// Cold start: `init_vertex` everywhere, frontier from the program.
    pub(crate) fn cold(program: &P, layout: &GraphLayout) -> Self {
        let n = layout.num_vertices();
        let values = (0..n)
            .map(|v| program.init_vertex(v, layout.csr.degree(v) as u32))
            .collect();
        let mut frontier = match program.initial_frontier() {
            InitialFrontier::All => Bitmap::full(n),
            InitialFrontier::Single(v) => {
                let mut b = Bitmap::new(n);
                if n > 0 {
                    b.set(v);
                }
                b
            }
        };
        if n == 0 {
            frontier = Bitmap::new(0);
        }
        Self::with_frontier(program, layout, values, frontier)
    }

    /// Warm start: carry a previous run's vertex values (padded with
    /// `init_vertex` for added vertices), seed the frontier explicitly.
    pub(crate) fn warm(program: &P, layout: &GraphLayout, w: WarmStart<P>) -> Self {
        let n = layout.num_vertices();
        let mut values = w.vertex_values;
        assert!(
            values.len() <= n as usize,
            "warm-start values exceed the vertex set"
        );
        for v in values.len() as u32..n {
            values.push(program.init_vertex(v, layout.csr.degree(v) as u32));
        }
        let mut b = Bitmap::new(n);
        for v in w.frontier {
            b.set(v);
        }
        Self::with_frontier(program, layout, values, b)
    }

    /// Restore from a durable snapshot: every field — including the full
    /// iteration trace — comes back exactly as captured at the boundary,
    /// so the replayed run's per-iteration report matches an
    /// uninterrupted oracle's and the final state is bit-identical.
    pub(crate) fn restored(r: crate::snapshot::RestoredState<P>) -> Self {
        HostState {
            vertex_values: r.vertex_values,
            edge_values: r.edge_values,
            gather_temp: r.gather_temp,
            frontier: r.frontier,
            changed: r.changed,
            next_frontier: r.next_frontier,
            iterations: r.trace,
        }
    }

    fn with_frontier(
        program: &P,
        layout: &GraphLayout,
        vertex_values: Vec<P::VertexValue>,
        frontier: Bitmap,
    ) -> Self {
        let n = layout.num_vertices();
        HostState {
            vertex_values,
            edge_values: vec![P::EdgeValue::default(); layout.num_edges() as usize],
            gather_temp: vec![program.gather_identity(); n as usize],
            frontier,
            changed: Bitmap::new(n),
            next_frontier: Bitmap::new(n),
            iterations: Vec::new(),
        }
    }

    /// One exact BSP iteration: Gather over all shards, Apply, Scatter,
    /// FrontierActivate, with every merge in shard order so results are
    /// bit-identical whether shards run serial or fanned out over host
    /// threads. Pushes this iteration's [`IterationStats`] and logs one
    /// [`Decision::ShardSkip`] per inactive shard (when frontier
    /// management is on — one decision == one shard counted skipped).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn compute_iteration(
        &mut self,
        program: &P,
        view: TopoView<'_>,
        shards: &[Shard],
        mode: HostKernels,
        frontier_management: bool,
        iter: u32,
        observer: &Observer,
        metrics: &mut MetricsRegistry,
        wall: &WallProfiler,
    ) -> Vec<ShardWork> {
        let _iter_scope = wall.scope(|| WallKey {
            iteration: iter,
            shard: WALL_NO_SHARD,
            phase: WALL_ITERATION,
            shape: "",
        });
        let layout = view.layout();
        let frontier_size = self.frontier.count();
        self.changed.clear_all();
        self.next_frontier.clear_all();
        let num_shards = shards.len();
        let mut work = vec![ShardWork::default(); num_shards];
        // Shards are independent within a BSP stage: with host threads
        // available, gather/apply/activate fan out one task per shard
        // (the intra-shard kernels may split further). All merge steps
        // run in shard order, so results are bit-identical to serial.
        let across_shards = rayon::current_num_threads() > 1 && num_shards > 1;

        // Gather (all shards, before any apply — BSP).
        if program.has_gather() {
            if across_shards {
                let vertex_values = &self.vertex_values;
                let edge_values = &self.edge_values;
                let frontier = &self.frontier;
                // Carve gather_temp into per-shard slices (intervals are
                // contiguous, ordered, disjoint).
                let mut slices: Vec<&mut [P::Gather]> = Vec::with_capacity(num_shards);
                let mut rest: &mut [P::Gather] = &mut self.gather_temp;
                let mut offset = 0usize;
                for sh in shards.iter() {
                    let lo = sh.interval.start as usize;
                    let hi = sh.interval.end as usize;
                    let (_, tail) = rest.split_at_mut(lo - offset);
                    let (mine, tail) = tail.split_at_mut(hi - lo);
                    slices.push(mine);
                    rest = tail;
                    offset = hi;
                }
                rayon::scope(|s| {
                    for (si, ((sh, slice), w)) in
                        shards.iter().zip(slices).zip(work.iter_mut()).enumerate()
                    {
                        s.spawn(move |_| {
                            let _w = wall
                                .scope(|| phase_key(iter, si as u32, "gather", mode, frontier, sh));
                            let (a, e) = gather_shard(
                                program,
                                view,
                                sh,
                                vertex_values,
                                edge_values,
                                &layout.weights,
                                frontier,
                                slice,
                                mode,
                            );
                            w.active_vertices = a;
                            w.active_in_edges = e;
                        });
                    }
                });
            } else {
                for (i, sh) in shards.iter().enumerate() {
                    let lo = sh.interval.start as usize;
                    let hi = sh.interval.end as usize;
                    let _w = wall
                        .scope(|| phase_key(iter, i as u32, "gather", mode, &self.frontier, sh));
                    let (a, e) = gather_shard(
                        program,
                        view,
                        sh,
                        &self.vertex_values,
                        &self.edge_values,
                        &layout.weights,
                        &self.frontier,
                        &mut self.gather_temp[lo..hi],
                        mode,
                    );
                    work[i].active_vertices = a;
                    work[i].active_in_edges = e;
                }
            }
        } else {
            for (i, sh) in shards.iter().enumerate() {
                work[i].active_vertices = self
                    .frontier
                    .count_range(sh.interval.start, sh.interval.end);
            }
        }

        // Apply.
        if across_shards {
            let gather_temp = &self.gather_temp;
            let frontier = &self.frontier;
            let mut slices: Vec<&mut [P::VertexValue]> = Vec::with_capacity(num_shards);
            let mut rest: &mut [P::VertexValue] = &mut self.vertex_values;
            let mut offset = 0usize;
            for sh in shards.iter() {
                let lo = sh.interval.start as usize;
                let hi = sh.interval.end as usize;
                let (_, tail) = rest.split_at_mut(lo - offset);
                let (mine, tail) = tail.split_at_mut(hi - lo);
                slices.push(mine);
                rest = tail;
                offset = hi;
            }
            let mut ids: Vec<Vec<u32>> = (0..num_shards).map(|_| Vec::new()).collect();
            rayon::scope(|s| {
                for (si, ((sh, slice), out)) in
                    shards.iter().zip(slices).zip(ids.iter_mut()).enumerate()
                {
                    s.spawn(move |_| {
                        let _w =
                            wall.scope(|| phase_key(iter, si as u32, "apply", mode, frontier, sh));
                        let lo = sh.interval.start as usize;
                        let hi = sh.interval.end as usize;
                        *out = apply_shard(
                            program,
                            sh,
                            slice,
                            &gather_temp[lo..hi],
                            frontier,
                            iter,
                            mode,
                        );
                    });
                }
            });
            for (i, changed_ids) in ids.into_iter().enumerate() {
                work[i].changed_vertices = changed_ids.len() as u64;
                for v in changed_ids {
                    self.changed.set(v);
                }
            }
        } else {
            for (i, sh) in shards.iter().enumerate() {
                let lo = sh.interval.start as usize;
                let hi = sh.interval.end as usize;
                let _w =
                    wall.scope(|| phase_key(iter, i as u32, "apply", mode, &self.frontier, sh));
                let changed_ids = apply_shard(
                    program,
                    sh,
                    &mut self.vertex_values[lo..hi],
                    &self.gather_temp[lo..hi],
                    &self.frontier,
                    iter,
                    mode,
                );
                drop(_w);
                work[i].changed_vertices = changed_ids.len() as u64;
                for v in changed_ids {
                    self.changed.set(v);
                }
            }
        }

        // Scatter (only when defined). Serial across shards — the
        // canonical edge ids of different shards interleave in
        // `edge_values`, so there is no slice split; each shard's dense
        // path parallelizes internally instead.
        if program.has_scatter() {
            for (i, sh) in shards.iter().enumerate() {
                let _w =
                    wall.scope(|| phase_key(iter, i as u32, "scatter", mode, &self.changed, sh));
                scatter_shard(
                    program,
                    view,
                    sh,
                    &self.vertex_values,
                    &mut self.edge_values,
                    &self.changed,
                    mode,
                );
            }
        }

        // FrontierActivate (always; framework-generated). Across shards,
        // each task marks a private bitmap; merging in shard order keeps
        // the activation count identical to the serial pass.
        let mut activated_total = 0;
        if across_shards {
            let changed = &self.changed;
            let n = self.next_frontier.len();
            let mut locals: Vec<(u64, Bitmap)> =
                (0..num_shards).map(|_| (0, Bitmap::new(n))).collect();
            rayon::scope(|s| {
                for (si, (sh, slot)) in shards.iter().zip(locals.iter_mut()).enumerate() {
                    s.spawn(move |_| {
                        let _w = wall
                            .scope(|| phase_key(iter, si as u32, "activate", mode, changed, sh));
                        let (walked, _) = activate_shard(view, sh, changed, &mut slot.1, mode);
                        slot.0 = walked;
                    });
                }
            });
            for (i, (walked, local)) in locals.iter().enumerate() {
                work[i].out_edges_of_changed = *walked;
                let before = self.next_frontier.count();
                self.next_frontier.or_assign(local);
                activated_total += self.next_frontier.count() - before;
            }
        } else {
            for (i, sh) in shards.iter().enumerate() {
                let _w =
                    wall.scope(|| phase_key(iter, i as u32, "activate", mode, &self.changed, sh));
                let (walked, activated) =
                    activate_shard(view, sh, &self.changed, &mut self.next_frontier, mode);
                work[i].out_edges_of_changed = walked;
                activated_total += activated;
            }
        }

        let processed = if frontier_management {
            // Log one skip decision per inactive shard: the engine
            // inspected the shard's slice of the frontier bitmap and
            // found no active vertex, so the whole shard is elided
            // this iteration. One decision == one shard counted in
            // `shards_skipped`.
            for (i, sh) in shards.iter().enumerate() {
                if !work[i].is_active() {
                    let active = work[i].active_vertices;
                    observer.decision(|| Decision::ShardSkip {
                        iteration: iter,
                        shard: i as u32,
                        interval_bits: sh.interval.len() as u64,
                        active_bits: active,
                    });
                }
            }
            work.iter().filter(|w| w.is_active()).count() as u32
        } else {
            num_shards as u32
        };
        metrics.observe("engine.frontier_size", frontier_size);
        metrics.observe("engine.active_shards", processed as u64);
        self.iterations.push(IterationStats {
            frontier_size,
            gathered_edges: work.iter().map(|w| w.active_in_edges).sum(),
            changed: self.changed.count(),
            activated: activated_total,
            shards_processed: processed,
            shards_skipped: num_shards as u32 - processed,
        });
        work
    }

    /// Publish the next frontier (end of the BSP superstep).
    pub(crate) fn finish_iteration(&mut self) {
        std::mem::swap(&mut self.frontier, &mut self.next_frontier);
    }

    /// Snapshot everything an iteration replay must restore.
    pub(crate) fn checkpoint(&self) -> Checkpoint<P> {
        Checkpoint {
            vertex_values: self.vertex_values.clone(),
            edge_values: self.edge_values.clone(),
            gather_temp: self.gather_temp.clone(),
            frontier: self.frontier.clone(),
            changed: self.changed.clone(),
            next_frontier: self.next_frontier.clone(),
            iterations_len: self.iterations.len(),
        }
    }

    /// Roll state back to a checkpoint (drops stats of replayed
    /// iterations; residency caches are the caller's to reset).
    pub(crate) fn restore(&mut self, c: &Checkpoint<P>) {
        self.vertex_values.clone_from(&c.vertex_values);
        self.edge_values.clone_from(&c.edge_values);
        self.gather_temp.clone_from(&c.gather_temp);
        self.frontier = c.frontier.clone();
        self.changed = c.changed.clone();
        self.next_frontier = c.next_frontier.clone();
        self.iterations.truncate(c.iterations_len);
    }
}

//! Partition Engine, planning layer: derive an executable plan from the
//! byte model, the options, and the device's (possibly capped) capacity.
//!
//! Everything here is a pure function of `(SizeModel, Options, caps)` —
//! no device ops, no streams, no host state. The output is an explicit
//! [`ExecPlan`]: the (possibly degraded) partition plus the memory
//! governor's verdict for every shard. The multi-GPU placement governor
//! lives with its orchestrator in [`crate::multi`]; the static
//! fusion/elimination decisions ([`emit_plan_decisions`]) are shared by
//! both paths.

use gr_graph::{split_shard, GraphLayout, Shard};
use gr_observe::{Decision, MetricsRegistry, Observer};
use gr_sim::OutOfMemory;

use crate::buffers::StagingBuffer;
use crate::options::Options;
use crate::recovery::EngineError;
use crate::sizes::{PartitionPlan, SizeModel};

use super::compress::ShardCompression;

/// The executable plan for one device: the partition (after any governor
/// degradation) plus per-shard movement verdicts. All-default governed
/// fields when the device is unconstrained: the governor makes no
/// decisions and the run is byte-identical to an ungoverned one.
pub struct ExecPlan {
    /// The partition plan, with shards split/renumbered as governed.
    pub partition: PartitionPlan,
    /// Rung 6: even per-shard degradation cannot fit the cap — the whole
    /// run executes on the host CPU and nothing is allocated on-device.
    pub host_run: bool,
    /// Per-slot streaming allocation size (== `partition.max_shard_bytes`
    /// unless chunking shrank it to the governed budget).
    pub slot_bytes: u64,
    /// Shards streamed in bounded chunks through the staging slot.
    pub chunked: Vec<bool>,
    /// Shards degraded to host-CPU execution.
    pub host_shards: Vec<bool>,
    /// Shards evicted to the configured [`ShardStore`]
    /// (out-of-host-core): their topology lives in the store, and every
    /// stream-in pays a storage read instead of a host-RAM read. Always
    /// all-false without a store.
    ///
    /// [`ShardStore`]: crate::store::ShardStore
    pub spilled: Vec<bool>,
}

// Governed fields under construction, before the (possibly mutated)
// partition is moved into the final plan.
struct Governed {
    host_run: bool,
    slot_bytes: u64,
    chunked: Vec<bool>,
    host_shards: Vec<bool>,
    spilled: Vec<bool>,
}

impl Governed {
    fn into_plan(self, partition: PartitionPlan) -> ExecPlan {
        ExecPlan {
            partition,
            host_run: self.host_run,
            slot_bytes: self.slot_bytes,
            chunked: self.chunked,
            host_shards: self.host_shards,
            spilled: self.spilled,
        }
    }
}

/// The device-memory governor: degrade the optimistic partition plan until
/// it fits the (possibly capped) device pool, escalating through
///
/// 1. drop residency (stream instead of caching every shard),
/// 2. reduce concurrency `K`,
/// 3. adaptively split oversized shards ([`split_shard`]),
/// 4. chunk transfers of unsplittable shards through a bounded staging
///    slot ([`StagingBuffer`]),
/// 5. per-shard host fallback — or, when a shard store is configured,
///    spill the shard to storage and stream it back chunked (the
///    out-of-host-core rung; see [`crate::store`]),
/// 6. whole-run host execution,
///
/// and surfacing [`EngineError::Alloc`] only when the recovery policy
/// forbids host fallback at a terminal rung. Every degradation emits
/// exactly one decision ([`Decision::MemoryPressure`],
/// [`Decision::ShardSplit`], [`Decision::ChunkedXfer`]) and bumps the
/// matching `engine.*` counter; with no `mem_cap` set this is a single
/// branch and zero decisions.
///
/// With shard compression armed (`comp`), every per-shard cost the ladder
/// compares against the budget is the *compressed* footprint — compressed
/// shards stay resident, keep concurrency, or stage whole where raw ones
/// would split, chunk, or spill. Partitioning itself stays optimistic and
/// raw ("plan optimistically, govern at runtime").
#[allow(clippy::too_many_arguments)] // the planning context really is this wide
pub fn build_exec_plan(
    partition: PartitionPlan,
    sizes: &SizeModel,
    layout: &GraphLayout,
    capacity: u64,
    opts: &Options,
    comp: Option<&ShardCompression>,
    metrics: &mut MetricsRegistry,
    observer: &Observer,
) -> Result<ExecPlan, EngineError> {
    let mut plan = partition;
    let cost = |s: &Shard| match comp {
        Some(c) => c.shard_bytes(sizes, s),
        None => sizes.shard_bytes(s),
    };
    if comp.is_some() {
        // Streaming slots and every rung below budget what actually
        // crosses PCIe and lands on the device: compressed bytes.
        plan.max_shard_bytes = plan.shards.iter().map(cost).max().unwrap_or(0);
    }
    let num_shards = plan.shards.len();
    let mut out = Governed {
        host_run: false,
        slot_bytes: plan.max_shard_bytes,
        chunked: vec![false; num_shards],
        host_shards: vec![false; num_shards],
        spilled: vec![false; num_shards],
    };
    if opts.mem_cap.is_none() {
        return Ok(out.into_plan(plan));
    }
    let oom = |requested: u64, available: u64| OutOfMemory {
        requested,
        available,
        capacity,
    };

    // Rung 6 first (it gates everything): the static buffers alone exceed
    // the cap, so no device execution is possible at all.
    if plan.static_bytes > capacity {
        if !opts.recovery.host_fallback {
            return Err(EngineError::Alloc(oom(plan.static_bytes, capacity)));
        }
        metrics.inc("engine.mem_pressure", 1);
        let requested = plan.static_bytes;
        observer.decision(|| Decision::MemoryPressure {
            device: 0,
            requested,
            available: capacity,
            capacity,
            response: "host-run",
            scope: "run",
        });
        out.host_run = true;
        return Ok(out.into_plan(plan));
    }
    let budget = capacity - plan.static_bytes;

    // Rung 1: residency. Caching every shard needs the whole streaming
    // working set on-device; under pressure, stream instead.
    if opts.cache_resident && plan.all_resident {
        let total: u64 = plan.shards.iter().map(cost).sum();
        if total > budget {
            metrics.inc("engine.mem_pressure", 1);
            observer.decision(|| Decision::MemoryPressure {
                device: 0,
                requested: total,
                available: budget,
                capacity,
                response: "stream",
                scope: "plan",
            });
            plan.all_resident = false;
        }
    }

    // Rung 2: concurrency. K slots of the largest shard must fit the
    // streaming budget (Equation (1) against the governed capacity).
    let k0 = plan.concurrent.max(1);
    let mut k = k0;
    while k > 1 && k as u64 * plan.max_shard_bytes > budget {
        k -= 1;
    }
    if k < k0 {
        metrics.inc("engine.mem_pressure", 1);
        let requested = k0 as u64 * plan.max_shard_bytes;
        observer.decision(|| Decision::MemoryPressure {
            device: 0,
            requested,
            available: budget,
            capacity,
            response: "reduce-concurrency",
            scope: "plan",
        });
        plan.concurrent = k;
    }
    let slot_budget = (budget / plan.concurrent.max(1) as u64).max(1);

    // Rung 3: adaptive shard splitting. Repeatedly split the largest
    // over-budget shard at its edge-mass midpoint; sub-shards execute
    // sequentially through the same slots with the same merged frontier
    // accounting, so results are bit-identical. Stops when nothing
    // over-budget can shrink further (a hub vertex's own edge lists).
    let mut split_any = false;
    while let Some((idx, bytes)) = plan
        .shards
        .iter()
        .enumerate()
        .map(|(i, s)| (i, cost(s)))
        .filter(|&(_, b)| b > slot_budget)
        .max_by_key(|&(_, b)| b)
    {
        let shard = plan.shards[idx].clone();
        let Some((left, right)) = split_shard(layout, &shard) else {
            break;
        };
        let worst = cost(&left).max(cost(&right));
        if worst >= bytes {
            // Degenerate split (all mass on one side): no progress.
            break;
        }
        metrics.inc("engine.shard_splits", 1);
        let vertices = shard.num_vertices();
        observer.decision(|| Decision::ShardSplit {
            shard: idx as u32,
            vertices,
            bytes,
        });
        plan.shards.splice(idx..=idx, [left, right]);
        split_any = true;
    }
    if split_any {
        for (i, sh) in plan.shards.iter_mut().enumerate() {
            sh.id = i;
        }
        plan.max_shard_bytes = plan.shards.iter().map(cost).max().unwrap_or(0);
        out.chunked = vec![false; plan.shards.len()];
        out.host_shards = vec![false; plan.shards.len()];
        out.spilled = vec![false; plan.shards.len()];
    }
    out.slot_bytes = plan.max_shard_bytes.min(slot_budget).max(1);

    // Rungs 4-5: shards that still exceed the slot stream through the
    // bounded staging slot in chunks — or, when even chunking is
    // unreasonable, degrade to host-CPU execution for that shard alone.
    if plan.max_shard_bytes > slot_budget {
        let staging = StagingBuffer::new(slot_budget);
        for (i, sh) in plan.shards.iter().enumerate() {
            let bytes = cost(sh);
            if bytes <= slot_budget {
                continue;
            }
            if staging.can_stage(bytes) {
                metrics.inc("engine.chunked_shards", 1);
                let chunks = staging.chunks_for(bytes) as u32;
                observer.decision(|| Decision::ChunkedXfer {
                    shard: i as u32,
                    shard_bytes: bytes,
                    chunk_bytes: slot_budget,
                    chunks,
                });
                out.chunked[i] = true;
            } else if opts.shard_store.is_some() {
                // Spill rung: with a shard store configured, an
                // unstageable shard streams from storage in bounded
                // chunks instead of abandoning the device. One governor
                // decision (it *is* a chunked transfer); the matching
                // ShardSpill decision is emitted by the runner when the
                // bytes actually move to the store.
                metrics.inc("engine.chunked_shards", 1);
                let chunks = bytes.div_ceil(slot_budget) as u32;
                observer.decision(|| Decision::ChunkedXfer {
                    shard: i as u32,
                    shard_bytes: bytes,
                    chunk_bytes: slot_budget,
                    chunks,
                });
                out.chunked[i] = true;
                out.spilled[i] = true;
            } else {
                if !opts.recovery.host_fallback {
                    return Err(EngineError::Alloc(oom(bytes, slot_budget)));
                }
                metrics.inc("engine.mem_pressure", 1);
                metrics.inc("engine.host_shards", 1);
                observer.decision(|| Decision::MemoryPressure {
                    device: 0,
                    requested: bytes,
                    available: slot_budget,
                    capacity,
                    response: "host-shard",
                    scope: "shard",
                });
                out.host_shards[i] = true;
            }
        }
    }
    Ok(out.into_plan(plan))
}

/// Record a run's static optimization decisions (made once, from the
/// program shape and options, not per iteration). Shared by both paths:
/// the single driver passes its `phase_fusion` option; the multi
/// orchestrator's pipeline is always fused-shape.
pub fn emit_plan_decisions(observer: &Observer, fusion: bool, has_gather: bool, has_scatter: bool) {
    if fusion {
        observer.decision(|| Decision::PhaseFusion {
            phases: "gatherMap+gatherReduce | scatter+frontierActivate",
            rationale: "intermediates (edge updates, gather temps) stay device-resident; \
                        scatter and activate share one out-edge copy",
        });
    }
    if !has_gather {
        observer.decision(|| Decision::PhaseElimination {
            phase: "gather",
            rationale: "program defines no gather: in-edge sub-arrays never cross PCIe",
        });
    }
    if !has_scatter {
        observer.decision(|| Decision::PhaseElimination {
            phase: "scatter",
            rationale: "program defines no scatter: out-edge values never move",
        });
    }
}

/// Max/mean degree ratio over an interval: the per-CTA imbalance a
/// vertex-centric kernel suffers without CTA load balancing. Capped at 16
/// (blocks internally mitigate extreme skew).
pub(crate) fn interval_skew(layout: &GraphLayout, sh: &Shard, in_edges: bool) -> f64 {
    let adj = if in_edges { &layout.csc } else { &layout.csr };
    let mut max = 0u64;
    let mut sum = 0u64;
    for v in sh.interval.start..sh.interval.end {
        let d = adj.degree(v);
        max = max.max(d);
        sum += d;
    }
    if sum == 0 {
        return 1.0;
    }
    let mean = sum as f64 / sh.interval.len() as f64;
    (max as f64 / mean.max(1.0)).clamp(1.0, 16.0)
}

//! Compute Engine: per-phase [`KernelSpec`] construction.
//!
//! Pure functions from shard work statistics and the byte model to kernel
//! specs — no device state, no ops. The single-GPU driver layers CTA
//! imbalance and gather-mode selection on top via [`ComputeSpecs`]; the
//! multi-GPU orchestrator reuses the same base builders with its
//! `multi.*` trace labels, so the cost model of a phase exists once.
//! The shared host-CPU roofline ([`host_work`]) prices degraded-mode and
//! governor host-shard execution identically on both paths.

use gr_graph::{GraphLayout, Shard};
use gr_observe::profiler::WALL_NO_SHARD;
use gr_observe::{WallKey, WallProfiler};
use gr_sim::{CpuWork, KernelSpec};

use crate::options::{GatherMode, Options};
use crate::phases::ShardWork;
use crate::sizes::SizeModel;

use super::compress::RAW_TOPO_ENTRY_BYTES;
use super::plan::interval_skew;

/// The edge-centric gather-map kernel over a shard's active in-edges.
/// Label varies per path (`"gatherMap"` single, `"multi.gather"` multi);
/// the cost model is identical.
pub fn gather_map_spec(sizes: &SizeModel, w: &ShardWork, label: &'static str) -> KernelSpec {
    KernelSpec::balanced(
        label,
        w.active_in_edges,
        2.0,
        w.active_in_edges * (sizes.in_edge_bytes() + sizes.gather),
        w.active_in_edges,
    )
}

/// The vertex-centric apply kernel over a shard's active vertices.
pub fn apply_kernel_spec(sizes: &SizeModel, w: &ShardWork, label: &'static str) -> KernelSpec {
    KernelSpec::balanced(
        label,
        w.active_vertices,
        4.0,
        w.active_vertices * (sizes.vertex_value + sizes.gather),
        0,
    )
}

/// The frontier-activation kernel walking the out-edges of changed
/// vertices (balanced base; the single path layers interval skew on top).
pub fn activate_kernel_spec(_sizes: &SizeModel, w: &ShardWork, label: &'static str) -> KernelSpec {
    KernelSpec::balanced(
        label,
        w.out_edges_of_changed,
        1.0,
        w.out_edges_of_changed * 4,
        w.out_edges_of_changed,
    )
}

/// Host-CPU roofline for GAS work executed on the host (whole-run
/// fallback, per-iteration degraded mode, or governor host-shards): the
/// same per-edge/per-vertex cost model the CPU baseline engines use.
pub fn host_work(label: &'static str, vertices: u64, edges: u64, sizes: &SizeModel) -> CpuWork {
    CpuWork::new(
        label,
        vertices + edges,
        8.0,
        edges * 16 + vertices * (sizes.vertex_value + sizes.gather),
        edges,
    )
}

/// Per-shard kernel-spec construction for the single-GPU path: the byte
/// model plus the options that shape kernels (gather mode, CTA load
/// balancing) plus per-shard degree-skew factors computed once per run.
pub struct ComputeSpecs {
    sizes: SizeModel,
    gather_mode: GatherMode,
    cta_load_balance: bool,
    // Per-shard CTA imbalance factors (max/mean degree in the interval).
    skew_in: Vec<f64>,
    skew_out: Vec<f64>,
}

impl ComputeSpecs {
    /// Precompute the per-shard skew factors and capture the spec-shaping
    /// options. The skew scan walks every edge of the graph once — the
    /// dominant real-time setup cost — so it carries a wall scope
    /// (`phase: "setup"`, outside any iteration).
    pub(crate) fn new(
        sizes: SizeModel,
        opts: &Options,
        layout: &GraphLayout,
        shards: &[Shard],
        wall: &WallProfiler,
    ) -> Self {
        let _w = wall.scope(|| WallKey {
            iteration: 0,
            shard: WALL_NO_SHARD,
            phase: "setup",
            shape: "skew",
        });
        let (skew_in, skew_out): (Vec<f64>, Vec<f64>) = shards
            .iter()
            .map(|sh| {
                (
                    interval_skew(layout, sh, true),
                    interval_skew(layout, sh, false),
                )
            })
            .unzip();
        ComputeSpecs {
            sizes,
            gather_mode: opts.gather_mode,
            cta_load_balance: opts.cta_load_balance,
            skew_in,
            skew_out,
        }
    }

    /// The (map, optional reduce) kernel pair of the gather phase. A fixed
    /// pair instead of a `Vec` — this runs per shard per iteration and
    /// used to allocate every time.
    pub(crate) fn gather_specs(&self, i: usize, w: &ShardWork) -> (KernelSpec, Option<KernelSpec>) {
        let ie = self.sizes.in_edge_bytes();
        let g = self.sizes.gather;
        let cta = self.cta_load_balance;
        match self.gather_mode {
            GatherMode::Hybrid => (
                gather_map_spec(&self.sizes, w, "gatherMap"),
                Some(
                    KernelSpec::balanced(
                        "gatherReduce",
                        w.active_vertices,
                        1.0,
                        w.active_in_edges * g + w.active_vertices * g,
                        0,
                    )
                    .with_imbalance(if cta { 1.0 } else { self.skew_in[i] }),
                ),
            ),
            GatherMode::VertexCentric => {
                let avg = if w.active_vertices > 0 {
                    w.active_in_edges as f64 / w.active_vertices as f64
                } else {
                    0.0
                };
                (
                    KernelSpec::balanced(
                        "gatherVertexCentric",
                        w.active_vertices,
                        2.0 * avg.max(1.0),
                        w.active_in_edges * (ie + g),
                        w.active_in_edges,
                    )
                    .with_imbalance(self.skew_in[i]),
                    None,
                )
            }
            GatherMode::EdgeCentricAtomic => (
                KernelSpec::balanced(
                    "gatherEdgeAtomic",
                    w.active_in_edges,
                    2.0,
                    w.active_in_edges * ie,
                    2 * w.active_in_edges,
                ),
                None,
            ),
        }
    }

    pub(crate) fn apply_spec(&self, w: &ShardWork) -> KernelSpec {
        apply_kernel_spec(&self.sizes, w, "apply")
    }

    pub(crate) fn scatter_spec(&self, i: usize, w: &ShardWork) -> KernelSpec {
        KernelSpec::balanced(
            "scatter",
            w.out_edges_of_changed,
            1.0,
            w.out_edges_of_changed * (8 + self.sizes.edge_value),
            w.changed_vertices,
        )
        .with_imbalance(if self.cta_load_balance {
            1.0
        } else {
            self.skew_out[i]
        })
    }

    /// The per-stream-in decode kernel over a shard's gap-coded topology:
    /// the compute half of the compression tradeoff. Sequential traffic is
    /// the compressed bits read plus the decoded entries written through
    /// on-chip memory to the consumers; a bit-serial prefix decode is
    /// branchy, hence the high flop weight. Gap rows inherit the
    /// interval's degree skew exactly like the kernels that consume them.
    pub(crate) fn decompress_spec(
        &self,
        i: usize,
        edges: u64,
        z_bytes: u64,
        in_edges: bool,
    ) -> KernelSpec {
        let skew = if in_edges {
            self.skew_in[i]
        } else {
            self.skew_out[i]
        };
        KernelSpec::balanced(
            "decompress",
            edges,
            8.0,
            z_bytes + edges * RAW_TOPO_ENTRY_BYTES,
            0,
        )
        .with_imbalance(if self.cta_load_balance { 1.0 } else { skew })
    }

    pub(crate) fn activate_spec(&self, i: usize, w: &ShardWork) -> KernelSpec {
        activate_kernel_spec(&self.sizes, w, "frontierActivate").with_imbalance(
            if self.cta_load_balance {
                1.0
            } else {
                self.skew_out[i]
            },
        )
    }
}

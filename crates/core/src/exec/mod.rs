//! The layered execution core shared by the single- and multi-GPU paths.
//!
//! Layering (each module may depend only on the ones above it):
//!
//! 1. [`plan`] — pure planning: `(SizeModel, Options, caps)` →
//!    [`plan::ExecPlan`]. No device state.
//! 2. [`compute`] — per-phase [`gr_sim::KernelSpec`] construction. No
//!    device state.
//! 3. [`device`] — [`device::DeviceCtx`]: one `Gpu` + streams, held
//!    allocations, the unified fault-retry loop, pending-kernel span
//!    resolution. The *only* module that calls `gr-sim` operations.
//! 4. [`movement`] — shard copy-in/copy-out policy (spray, zero-copy,
//!    chunking, storage stalls), issuing ops through [`device`].
//! 5. [`host`] — the host master state: the exact GAS computation every
//!    run performs (fanned out over host threads when available), with
//!    real wall-clock attribution via `gr_observe`'s `WallProfiler`.
//! 6. [`driver`] — the single-device BSP iteration loop: frontier skip,
//!    checkpoint/rollback, host fallback, timeline emission.
//!
//! [`compress`] sits beside [`plan`] and [`compute`]: pure per-shard byte
//! accounting over the gap-coded topology (no device state), consumed by
//! the governor, the movement buffer sets, and the decompress pricing.
//! [`durable`] sits beside [`driver`]: the durable-checkpoint writer
//! (full/delta schedule, GRCM/GRCZ framing, fault-hardened writes) shared
//! by the driver and the multi-GPU orchestrator.
//!
//! The multi-GPU orchestrator ([`crate::multi`]) sits beside [`driver`]:
//! it owns N [`device::DeviceCtx`]s plus the exchange/placement logic and
//! reuses layers 1-4 (and the driver's host-state/rollback helpers)
//! instead of re-implementing them. See `docs/ARCHITECTURE.md`.

pub mod compress;
pub mod compute;
pub mod device;
pub mod driver;
pub mod durable;
pub mod host;
pub mod movement;
pub mod plan;

//! The durable-checkpoint writer shared by the single-GPU driver and the
//! multi-GPU orchestrator.
//!
//! `DurableWriter` owns the full-vs-delta schedule, the dirty-vertex
//! accumulator delta snapshots are keyed off, and the container layers a
//! snapshot passes through on its way to disk: the inner GRCK/GRCD state
//! blob, an optional GRCM multi-GPU wrapper (device count + placement
//! map), and an optional GRCZ compression wrapper. All writes go through
//! the fault-hardened storage plane ([`crate::storage`]), so injected
//! checkpoint-write faults are retried and, after exhaustion, degrade to
//! a skipped snapshot instead of a failed run.
//!
//! Disk time is host-side and off the device timelines: durable runs stay
//! time-identical to in-memory-only runs.

use std::path::{Path, PathBuf};

use gr_graph::{Bitmap, CompressionCodec};
use gr_observe::{Decision, MetricsRegistry, Observer};

use crate::api::GasProgram;
use crate::exec::host::HostState;
use crate::recovery::EngineError;
use crate::snapshot::{self, CheckpointPolicy, Fingerprint};
use crate::snapshot_delta::{self, DeltaChain};
use crate::snapshot_multi;
use crate::storage::StorageCtx;

/// The durable slice of a [`CheckpointPolicy`]: where, how often, and
/// whether boundaries between full snapshots write deltas.
pub(crate) struct DurableConfig {
    pub(crate) dir: PathBuf,
    pub(crate) every: u32,
    /// `Some(k)`: delta mode — promote every `k`-th durable boundary to a
    /// full snapshot, write deltas in between. `None`: every snapshot is
    /// full.
    pub(crate) full_every: Option<u32>,
}

impl DurableConfig {
    pub(crate) fn from_policy(p: &CheckpointPolicy) -> Option<Self> {
        match p {
            CheckpointPolicy::Durable { dir, every } => Some(DurableConfig {
                dir: dir.clone(),
                every: (*every).max(1),
                full_every: None,
            }),
            CheckpointPolicy::DurableDelta {
                dir,
                every,
                full_every,
            } => Some(DurableConfig {
                dir: dir.clone(),
                every: (*every).max(1),
                full_every: Some((*full_every).max(1)),
            }),
            _ => None,
        }
    }
}

/// Writes versioned, checksummed snapshots at BSP iteration boundaries,
/// choosing full vs delta deterministically — a resumed run makes the
/// same choices at the same boundaries as the uninterrupted one.
pub(crate) struct DurableWriter {
    cfg: DurableConfig,
    fp: Fingerprint,
    /// Snapshot payload compression (single-GPU runs reuse the shard
    /// codec; multi-GPU snapshots stay uncompressed).
    codec: Option<CompressionCodec>,
    /// `Some`: wrap snapshots in a GRCM container recording the cluster
    /// context (multi-GPU runs only).
    placement: Option<(u32, Vec<usize>)>,
    /// Boundary the newest on-disk snapshot covers (write dedupe and the
    /// driver's in-memory-checkpoint elision).
    durable_at: Option<u32>,
    /// Vertices changed since the last full snapshot (delta mode only).
    dirty: Bitmap,
    last_full_at: Option<u32>,
}

impl DurableWriter {
    pub(crate) fn new(
        cfg: DurableConfig,
        fp: Fingerprint,
        num_vertices: u32,
        codec: Option<CompressionCodec>,
    ) -> Self {
        DurableWriter {
            cfg,
            fp,
            codec,
            placement: None,
            durable_at: None,
            dirty: Bitmap::new(num_vertices),
            last_full_at: None,
        }
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Whether the newest on-disk snapshot covers exactly `boundary` (the
    /// driver elides its in-memory rollback clone when it does).
    pub(crate) fn covers(&self, boundary: u32) -> bool {
        self.durable_at == Some(boundary)
    }

    /// Record the cluster context to stamp into every snapshot (multi-GPU
    /// orchestrator only; refresh after redistribution).
    pub(crate) fn set_placement(&mut self, num_gpus: u32, owners: &[usize]) {
        self.placement = Some((num_gpus, owners.to_vec()));
    }

    /// A resume restored state at `boundary`; continue the schedule (and,
    /// for a delta restore, the dirty chain) exactly where the killed run
    /// left it.
    pub(crate) fn note_restored(&mut self, boundary: u32, chain: Option<DeltaChain>) {
        self.durable_at = Some(boundary);
        match chain {
            Some(c) => {
                self.last_full_at = Some(c.base_iterations);
                self.dirty = c.dirty;
            }
            None => self.last_full_at = Some(boundary),
        }
    }

    /// Fold one completed iteration's changed set into the dirty
    /// accumulator. Call once per *successful* iteration (rollback
    /// replays recompute the identical changed set, and OR is idempotent,
    /// so replays never inflate the dirty set).
    pub(crate) fn record_iteration(&mut self, changed: &Bitmap) {
        if self.cfg.full_every.is_some() {
            self.dirty.or_assign(changed);
        }
    }

    /// Write a durable snapshot of the current iteration boundary — every
    /// `every` completed iterations, or unconditionally when `force`d
    /// (the initial boundary and convergence). Full vs delta follows the
    /// configured cadence; a skipped write (storage-fault exhaustion)
    /// leaves the previous snapshot in charge and the run continues.
    pub(crate) fn maybe_write<P: GasProgram>(
        &mut self,
        host: &HostState<P>,
        force: bool,
        storage: &mut StorageCtx,
        observer: &Observer,
        metrics: &mut MetricsRegistry,
    ) -> Result<(), EngineError> {
        let boundary = host.iterations.len() as u32;
        if self.durable_at == Some(boundary) || (!force && !boundary.is_multiple_of(self.cfg.every))
        {
            return Ok(());
        }
        let full = match (self.cfg.full_every, self.last_full_at) {
            (None, _) | (Some(_), None) => true,
            (Some(fe), Some(last)) => boundary.saturating_sub(last) >= self.cfg.every * fe,
        };
        let inner = if full {
            snapshot::encode_snapshot::<P>(
                &self.fp,
                &host.vertex_values,
                &host.edge_values,
                &host.gather_temp,
                &host.frontier,
                &host.changed,
                &host.next_frontier,
                &host.iterations,
            )
        } else {
            snapshot_delta::encode_delta::<P>(
                &self.fp,
                self.last_full_at.expect("delta implies a prior full"),
                &self.dirty,
                &host.vertex_values,
                &host.edge_values,
                &host.gather_temp,
                &host.frontier,
                &host.changed,
                &host.next_frontier,
                &host.iterations,
            )
        };
        let mut framed = inner;
        if let Some((ngpu, owners)) = &self.placement {
            framed = snapshot_multi::wrap_multi(*ngpu, owners, &framed);
        }
        let raw_len = framed.len() as u64;
        let framed = match self.codec {
            Some(codec) => snapshot_delta::wrap_compressed(codec, &framed),
            None => framed,
        };
        let name = if full {
            snapshot::snapshot_name(boundary)
        } else {
            snapshot_delta::delta_name(boundary)
        };
        let Some(written) = storage.snapshot_write(&self.cfg.dir, &name, boundary, &framed)? else {
            // Skipped after retry exhaustion: the previous snapshot still
            // covers its boundary; the schedule state is untouched.
            return Ok(());
        };
        metrics.inc("engine.checkpoint_writes", 1);
        metrics.inc("engine.checkpoint_bytes", written);
        metrics.inc("engine.checkpoint_raw_bytes", raw_len);
        if full {
            metrics.inc("engine.checkpoint_full_bytes", written);
            self.last_full_at = Some(boundary);
            self.dirty.clear_all();
            snapshot::prune_old(&self.cfg.dir)?;
            if self.cfg.full_every.is_some() {
                // Everything the new full covers is redundant.
                snapshot_delta::prune_deltas(&self.cfg.dir, Some(boundary))?;
            }
        } else {
            metrics.inc("engine.checkpoint_delta_writes", 1);
            metrics.inc("engine.checkpoint_delta_bytes", written);
            snapshot_delta::prune_deltas(&self.cfg.dir, None)?;
        }
        observer.decision(|| Decision::CheckpointWrite {
            iteration: boundary,
            bytes: written,
        });
        self.durable_at = Some(boundary);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::RecoveryPolicy;
    use crate::snapshot::fingerprint_for;
    use crate::testprog::Cc;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("gr-durable-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn delta_cadence_promotes_every_kth_boundary_to_full() {
        let layout = GraphLayout::build(&gen::uniform(64, 256, 3).symmetrize());
        let fp = fingerprint_for(&Cc, &layout);
        let dir = tmpdir("cadence");
        let cfg = DurableConfig {
            dir: dir.clone(),
            every: 1,
            full_every: Some(3),
        };
        let mut w = DurableWriter::new(cfg, fp.clone(), 64, None);
        let mut storage = StorageCtx::new(
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            Observer::disabled(),
        );
        let mut metrics = MetricsRegistry::new();
        let mut host = HostState::<Cc>::cold(&Cc, &layout);
        // Boundary 0: always full. Boundaries 1, 2: deltas. Boundary 3: full.
        let mut kinds = Vec::new();
        for b in 0..=3u32 {
            while (host.iterations.len() as u32) < b {
                host.iterations
                    .push(crate::stats::IterationStats::default());
            }
            w.record_iteration(&host.changed);
            w.maybe_write(
                &host,
                b == 0,
                &mut storage,
                &Observer::disabled(),
                &mut metrics,
            )
            .unwrap();
            let full = dir.join(snapshot::snapshot_name(b)).exists();
            let delta = dir.join(snapshot_delta::delta_name(b)).exists();
            kinds.push((full, delta));
        }
        assert_eq!(
            kinds,
            vec![(true, false), (false, true), (false, true), (true, false)],
            "full at 0, deltas at 1-2, full at 3"
        );
        assert_eq!(metrics.counter("engine.checkpoint_writes"), 4);
        assert_eq!(metrics.counter("engine.checkpoint_delta_writes"), 2);
        assert!(
            metrics.counter("engine.checkpoint_full_bytes")
                + metrics.counter("engine.checkpoint_delta_bytes")
                == metrics.counter("engine.checkpoint_bytes")
        );
        // The full at 3 obsoleted the earlier deltas.
        assert!(!dir.join(snapshot_delta::delta_name(1)).exists());
        assert!(!dir.join(snapshot_delta::delta_name(2)).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_boundary_never_writes_twice() {
        let layout = GraphLayout::build(&gen::uniform(64, 256, 3).symmetrize());
        let fp = fingerprint_for(&Cc, &layout);
        let dir = tmpdir("dedupe");
        let cfg = DurableConfig {
            dir: dir.clone(),
            every: 2,
            full_every: None,
        };
        let mut w = DurableWriter::new(cfg, fp, 64, None);
        let mut storage = StorageCtx::new(
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            Observer::disabled(),
        );
        let mut metrics = MetricsRegistry::new();
        let host = HostState::<Cc>::cold(&Cc, &layout);
        w.maybe_write(
            &host,
            true,
            &mut storage,
            &Observer::disabled(),
            &mut metrics,
        )
        .unwrap();
        assert!(w.covers(0));
        // Forced again at the same boundary (convergence right after the
        // initial snapshot): deduped.
        w.maybe_write(
            &host,
            true,
            &mut storage,
            &Observer::disabled(),
            &mut metrics,
        )
        .unwrap();
        assert_eq!(metrics.counter("engine.checkpoint_writes"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Compression glue for the exec core: per-shard byte accounting over a
//! [`CompressedTopology`] plus the compressed buffer sets the movement
//! layer ships instead of raw `(neighbor, edge id)` sub-arrays.
//!
//! The device never materializes decoded topology in global memory: the
//! consuming kernels read through the bit-packed gap streams per interval
//! (mirroring the host-side [`TopoView`] lazy decode), so a shard's device
//! footprint *is* its compressed footprint and the governor budgets in
//! compressed bytes. What compression cannot elide still ships raw: the
//! mutable per-edge values, real (non-unit) static weights, and the
//! frontier bitmaps. The decode work is charged honestly as a
//! `decompress` kernel per topology stream-in (see
//! `ComputeSpecs::decompress_spec` in [`super::compute`] and
//! `docs/COMPRESSION.md`).

use gr_graph::{CompressedTopology, CompressionCodec, GraphLayout, Shard, TopoView};

use crate::sizes::SizeModel;

use super::movement::BufSet;

/// Raw bytes per decoded topology entry: neighbor id (4) + weight (4) +
/// canonical edge id (4) — what the decompress kernel writes through
/// registers/shared memory per edge, and the apples-to-apples raw side of
/// every compression ratio.
pub(crate) const RAW_TOPO_ENTRY_BYTES: u64 = 12;

/// One run's compressed shard representation: both adjacency directions
/// gap-coded under one codec, with per-shard byte queries for the
/// governor, the movement layer, and the observability surface.
pub struct ShardCompression {
    topo: CompressedTopology,
}

impl ShardCompression {
    pub fn new(layout: &GraphLayout, codec: CompressionCodec) -> ShardCompression {
        ShardCompression {
            topo: CompressedTopology::build(layout, codec),
        }
    }

    pub fn codec(&self) -> CompressionCodec {
        self.topo.codec
    }

    /// The host kernels' decoded read path over this representation.
    pub fn view<'a>(&'a self, layout: &'a GraphLayout) -> TopoView<'a> {
        TopoView::compressed(layout, &self.topo)
    }

    /// Compressed bytes of the shard's in-edge (CSC) gap stream.
    pub fn csc_bytes(&self, sh: &Shard) -> u64 {
        self.topo
            .csc
            .interval_bytes(sh.interval.start, sh.interval.end)
    }

    /// Compressed bytes of the shard's out-edge (CSR) gap stream.
    pub fn csr_bytes(&self, sh: &Shard) -> u64 {
        self.topo
            .csr
            .interval_bytes(sh.interval.start, sh.interval.end)
    }

    /// In-edge sub-arrays under compression, mirroring
    /// [`super::movement::in_bufs_for`]: the gap stream replaces the raw
    /// `(src, weight, canonical idx)` triples, static weights ship raw
    /// only when the graph carries non-unit weights (all-1.0 weights are
    /// synthesized device-side), and the per-edge update/state scratch is
    /// device-initialized by the decompress kernel instead of copied.
    pub(crate) fn in_bufs(&self, sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
        let mut set = BufSet::default();
        if !sizes.has_gather && !force {
            return set;
        }
        set.push((self.csc_bytes(sh), "in.topo.z"));
        let e = sh.num_in_edges();
        if self.topo.weighted {
            set.push((e * 4, "in.weight"));
        }
        if sizes.edge_value > 0 {
            set.push((e * sizes.edge_value, "in.value"));
        }
        set
    }

    /// Out-edge sub-arrays under compression, mirroring
    /// [`super::movement::out_bufs_for`]: the CSR gap stream carries both
    /// destinations and canonical ids (FrontierActivate and scatter decode
    /// through it), so only mutable edge values still ship raw.
    pub(crate) fn out_bufs(&self, sizes: &SizeModel, sh: &Shard, force: bool) -> BufSet {
        let mut set = BufSet::default();
        set.push((self.csr_bytes(sh), "out.topo.z"));
        if (sizes.has_scatter || force) && sizes.edge_value > 0 {
            set.push((sh.num_out_edges() * sizes.edge_value, "out.value"));
        }
        set
    }

    /// Per-shard device footprint in compressed form — the governor's and
    /// resident allocator's cost function instead of
    /// [`SizeModel::shard_bytes`]. Component-for-component mirror of the
    /// raw model: in-edge arrays exist only for gathering programs,
    /// out-edge values only for scattering ones, frontier bitmaps always.
    pub fn shard_bytes(&self, sizes: &SizeModel, sh: &Shard) -> u64 {
        let mut total = sh.num_vertices().div_ceil(8) * 2;
        total += self.csr_bytes(sh);
        if sizes.has_scatter {
            total += sh.num_out_edges() * sizes.edge_value;
        }
        if sizes.has_gather {
            total += self.csc_bytes(sh) + sh.num_in_edges() * sizes.edge_value;
            if self.topo.weighted {
                total += sh.num_in_edges() * 4;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_graph::{gen, partition_into_shards, EvenEdgePartition, GraphLayout};

    fn setup(weighted: bool) -> (GraphLayout, Vec<Shard>) {
        let mut el = gen::rmat_g500(8, 4096, 7);
        if weighted {
            el = gen::with_random_weights(el, 64.0, 11);
        }
        let layout = GraphLayout::build(&el);
        let shards = partition_into_shards(&layout, &EvenEdgePartition, 4);
        (layout, shards)
    }

    fn size_model(gather: bool, scatter: bool) -> SizeModel {
        SizeModel {
            vertex_value: 8,
            gather: 8,
            edge_value: if scatter { 8 } else { 0 },
            has_gather: gather,
            has_scatter: scatter,
        }
    }

    #[test]
    fn compressed_footprint_beats_raw_on_skewed_graphs() {
        let (layout, shards) = setup(false);
        let comp = ShardCompression::new(&layout, CompressionCodec::default());
        let sizes = size_model(true, true);
        let raw: u64 = shards.iter().map(|s| sizes.shard_bytes(s)).sum();
        let z: u64 = shards.iter().map(|s| comp.shard_bytes(&sizes, s)).sum();
        assert!(
            z * 5 < raw * 2,
            "compressed footprint {z} not ≥2.5x below raw {raw}"
        );
    }

    #[test]
    fn buf_sets_mirror_raw_gating() {
        let (layout, shards) = setup(false);
        let comp = ShardCompression::new(&layout, CompressionCodec::Varint);
        // Gather-less, unforced: no in-edge movement at all (phase
        // elimination), exactly like the raw builder.
        let sizes = size_model(false, false);
        assert!(comp
            .in_bufs(&sizes, &shards[0], false)
            .as_slice()
            .is_empty());
        assert_eq!(comp.in_bufs(&sizes, &shards[0], true).as_slice().len(), 1);
        // Scatter-less: out set is the topology stream alone.
        let out = comp.out_bufs(&sizes, &shards[0], false);
        assert_eq!(out.as_slice().len(), 1);
        assert_eq!(out.as_slice()[0].1, "out.topo.z");
    }

    #[test]
    fn unit_weights_never_ship_but_real_weights_do() {
        let sizes = size_model(true, false);
        let (layout, shards) = setup(false);
        let comp = ShardCompression::new(&layout, CompressionCodec::default());
        let labels: Vec<_> = comp
            .in_bufs(&sizes, &shards[0], false)
            .as_slice()
            .iter()
            .map(|b| b.1)
            .collect();
        assert!(!labels.contains(&"in.weight"), "unit weights shipped");

        let (layout, shards) = setup(true);
        let comp = ShardCompression::new(&layout, CompressionCodec::default());
        let labels: Vec<_> = comp
            .in_bufs(&sizes, &shards[0], false)
            .as_slice()
            .iter()
            .map(|b| b.1)
            .collect();
        assert!(labels.contains(&"in.weight"), "real weights must ship");
    }

    #[test]
    fn interval_bytes_cover_the_whole_graph() {
        let (layout, shards) = setup(false);
        let comp = ShardCompression::new(&layout, CompressionCodec::Zeta(3));
        let csc: u64 = shards.iter().map(|s| comp.csc_bytes(s)).sum();
        let csr: u64 = shards.iter().map(|s| comp.csr_bytes(s)).sum();
        // Per-shard byte extents tile the stream; rounding each interval
        // up to bytes can only add.
        assert!(csc >= comp.topo.csc.total_bytes());
        assert!(csr >= comp.topo.csr.total_bytes());
        assert!(csc <= comp.topo.csc.total_bytes() + shards.len() as u64);
        assert!(csr <= comp.topo.csr.total_bytes() + shards.len() as u64);
    }
}

//! The multi-GPU snapshot container.
//!
//! [`crate::multi::MultiGraphReduce`] computes exact results on one
//! host-resident master state (device timelines only price the work), so
//! a multi-GPU checkpoint is a single-GPU snapshot plus the cluster
//! context it was taken under: the device count and the shard-placement
//! map. The "GRCM" container wraps the inner GRCK/GRCD blob with exactly
//! that, under its own whole-file checksum.
//!
//! On resume the placement map is *informational*: placement affects only
//! the simulated timelines, never the results, and the resuming cluster
//! may have a different device count (a node can come back short a GPU).
//! The orchestrator therefore always re-derives placement for the current
//! device set and lets the memory governor redistribute from there,
//! while the decoded map lets tools and tests see where shards lived.

use std::path::Path;

use crate::snapshot::{check_envelope, fnv1a, SnapshotError, SNAPSHOT_VERSION};

/// Magic bytes opening a multi-GPU snapshot container.
pub const MULTI_MAGIC: [u8; 4] = *b"GRCM";

/// The cluster context a multi-GPU snapshot was taken under.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct MultiPlacement {
    /// Devices the checkpointing run was using.
    pub(crate) num_gpus: u32,
    /// Owning device per shard at capture time.
    pub(crate) owners: Vec<u32>,
}

/// Wrap inner snapshot bytes (GRCK or GRCD, checksum included) in a GRCM
/// container recording the device count and shard-placement map.
pub(crate) fn wrap_multi(num_gpus: u32, owners: &[usize], inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + owners.len() * 4 + inner.len());
    out.extend_from_slice(&MULTI_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&num_gpus.to_le_bytes());
    out.extend_from_slice(&(owners.len() as u32).to_le_bytes());
    for &o in owners {
        out.extend_from_slice(&(o as u32).to_le_bytes());
    }
    out.extend_from_slice(&(inner.len() as u64).to_le_bytes());
    out.extend_from_slice(inner);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// If `buf` is a GRCM container, validate it and return the inner bytes
/// plus the recorded placement; otherwise hand `buf` back unchanged.
pub(crate) fn unwrap_if_multi(
    path: &Path,
    buf: Vec<u8>,
) -> Result<(Vec<u8>, Option<MultiPlacement>), SnapshotError> {
    if buf.len() < 4 || buf[..4] != MULTI_MAGIC {
        return Ok((buf, None));
    }
    let mut r = check_envelope(path, &buf, &MULTI_MAGIC)?;
    let num_gpus = r.u32("device count")?;
    let owners_len = r.u32("placement map length")? as usize;
    let mut owners = Vec::with_capacity(owners_len);
    for _ in 0..owners_len {
        owners.push(r.u32("placement map entry")?);
    }
    let inner_len = r.u64("inner snapshot length")? as usize;
    let inner = r.take(inner_len, "inner snapshot")?.to_vec();
    Ok((inner, Some(MultiPlacement { num_gpus, owners })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_container_round_trips_placement_and_inner_bytes() {
        let inner = vec![0xabu8; 193];
        let owners = vec![0usize, 1, 2, 0, 1];
        let wrapped = wrap_multi(3, &owners, &inner);
        let path = Path::new("mem");
        let (got_inner, placement) = unwrap_if_multi(path, wrapped.clone()).unwrap();
        assert_eq!(got_inner, inner);
        let placement = placement.expect("GRCM carries placement");
        assert_eq!(placement.num_gpus, 3);
        assert_eq!(placement.owners, vec![0u32, 1, 2, 0, 1]);
        // Non-GRCM bytes pass through untouched.
        let (passthrough, none) = unwrap_if_multi(path, inner.clone()).unwrap();
        assert_eq!(passthrough, inner);
        assert!(none.is_none());
        // Any flipped bit fails the outer checksum.
        let mut bad = wrapped;
        let mid = bad.len() / 2;
        bad[mid] ^= 0x04;
        assert!(matches!(
            unwrap_if_multi(path, bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}

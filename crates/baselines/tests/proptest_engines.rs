//! Property tests for the baseline engines: on arbitrary graphs, all four
//! must produce results identical to the sequential GAS oracle, and their
//! structural cost characteristics must hold (X-Stream streams |E| per
//! iteration; GPU engines refuse graphs beyond device memory).

use proptest::prelude::*;

use gr_algorithms::{reference, Bfs, Cc};
use gr_baselines::{CuSha, GraphChi, MapGraph, XStream};
use gr_graph::{EdgeList, GraphLayout};
use gr_sim::{HostConfig, Platform};

fn graphs() -> impl Strategy<Value = EdgeList> {
    (2u32..100).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 1..400)
            .prop_map(move |edges| EdgeList::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_engines_agree_with_the_oracle(el in graphs(), src in 0u32..100) {
        let layout = GraphLayout::build(&el);
        let src = src % layout.num_vertices();
        let host = HostConfig::xeon_e5_2670();
        let plat = Platform::paper_node();

        let (cc_want, _, _) = reference::run_gas(&Cc, &layout);
        let bfs_want = reference::bfs(&layout, src);

        let chi = GraphChi::default().run(&Cc, &layout, &host);
        prop_assert_eq!(&chi.vertex_values, &cc_want);
        let xs = XStream::default().run(&Bfs::new(src), &layout, &host);
        prop_assert_eq!(&xs.vertex_values, &bfs_want);
        let cu = CuSha::default().run(&Cc, &layout, &plat).unwrap();
        prop_assert_eq!(&cu.vertex_values, &cc_want);
        let mg = MapGraph::default().run(&Bfs::new(src), &layout, &plat).unwrap();
        prop_assert_eq!(&mg.vertex_values, &bfs_want);
    }

    #[test]
    fn xstream_traffic_scales_with_edges_times_iterations(el in graphs()) {
        let layout = GraphLayout::build(&el);
        let run = XStream::default().run(&Cc, &layout, &HostConfig::xeon_e5_2670());
        let xs = XStream::default();
        let floor = run.stats.iterations as u64 * layout.num_edges() * xs.edge_record_bytes;
        prop_assert!(run.stats.bytes_streamed >= floor);
    }

    #[test]
    fn gpu_engines_respect_device_capacity(el in graphs()) {
        let layout = GraphLayout::build(&el);
        // A device sized just under the engine's requirement must refuse;
        // one sized just over must accept.
        let need = CuSha::default().device_bytes(&layout);
        let mut small = Platform::paper_node();
        small.device.mem_capacity = need.saturating_sub(1);
        prop_assert!(CuSha::default().run(&Cc, &layout, &small).is_err());
        let mut big = Platform::paper_node();
        big.device.mem_capacity = need;
        prop_assert!(CuSha::default().run(&Cc, &layout, &big).is_ok());

        let need = MapGraph::default().device_bytes(&layout);
        let mut small = Platform::paper_node();
        small.device.mem_capacity = need.saturating_sub(1);
        prop_assert!(MapGraph::default().run(&Cc, &layout, &small).is_err());
    }

    #[test]
    fn engine_timings_are_deterministic(el in graphs()) {
        let layout = GraphLayout::build(&el);
        let host = HostConfig::xeon_e5_2670();
        let a = XStream::default().run(&Cc, &layout, &host);
        let b = XStream::default().run(&Cc, &layout, &host);
        prop_assert_eq!(a.stats, b.stats);
        let plat = Platform::paper_node();
        let c = CuSha::default().run(&Cc, &layout, &plat).unwrap();
        let d = CuSha::default().run(&Cc, &layout, &plat).unwrap();
        prop_assert_eq!(c.stats, d.stats);
    }
}

//! CuSha-style in-GPU-memory engine (Khorasani et al., HPDC '14).
//!
//! G-Shards / Concatenated-Windows design: the whole graph is reshaped into
//! shards that one thread block each processes with fully coalesced reads,
//! then writes its window of updated vertices back. Strengths and
//! weaknesses both follow from "process every shard every iteration":
//! superb bandwidth utilization on dense frontiers, but no ability to skip
//! work when the frontier is tiny — the pattern behind its Table 2/4
//! results (huge wins on power-law BFS, modest ones on road networks with
//! hundreds of near-empty iterations).
//!
//! Requires the graph to fit in device memory; returns the allocator's
//! [`OutOfMemory`] otherwise, exactly like the real system's hard
//! assumption.

use gr_graph::GraphLayout;
use gr_sim::{Gpu, KernelSpec, OutOfMemory, Platform};
use graphreduce::GasProgram;

use crate::executor::{execute, WorkloadTrace};
use crate::{BaselineRun, BaselineStats};

/// CuSha-style engine configuration.
#[derive(Clone, Debug)]
pub struct CuSha {
    /// Bytes per G-Shards entry (src value copy, src id, dst id, edge
    /// value — the format's defining redundancy).
    pub entry_bytes: u64,
    /// Bytes per vertex of window state.
    pub vertex_bytes: u64,
    /// Host-side cost per iteration: the full shard grid is torn down and
    /// relaunched, windows are re-bound, and the host inspects the
    /// convergence flag. Calibrated against CuSha's published
    /// per-iteration times (~1.4 ms/iteration on belgium_osm-class inputs
    /// at full scale, which its kernels alone do not explain).
    pub iteration_overhead: gr_sim::SimDuration,
}

impl Default for CuSha {
    fn default() -> Self {
        CuSha {
            entry_bytes: 16,
            vertex_bytes: 8,
            iteration_overhead: gr_sim::SimDuration::from_micros(250),
        }
    }
}

impl CuSha {
    /// Device bytes needed for a graph: the full in-memory footprint of
    /// Table 1 (G-Shards + windows + auxiliary state) — the quantity the
    /// paper classifies datasets by.
    pub fn device_bytes(&self, layout: &GraphLayout) -> u64 {
        gr_graph::in_memory_bytes(layout.num_vertices() as u64, layout.num_edges())
    }

    /// Bytes actually uploaded at load time (the G-Shards payload; the
    /// capacity *requirement* above also counts scratch that is built
    /// on-device).
    pub fn transfer_bytes(&self, layout: &GraphLayout) -> u64 {
        layout.num_edges() * self.entry_bytes
            + layout.num_vertices() as u64 * (2 * self.vertex_bytes)
    }

    /// Run `program` to convergence on `platform`'s device.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        layout: &GraphLayout,
        platform: &Platform,
    ) -> Result<BaselineRun<P>, OutOfMemory> {
        let mut gpu = Gpu::new(platform);
        let bytes = self.device_bytes(layout);
        let _graph = gpu.alloc(bytes)?;
        let trace: WorkloadTrace<P> = execute(program, layout);
        let s = gpu.create_stream();
        let e = layout.num_edges();
        let v = layout.num_vertices() as u64;

        gpu.h2d(s, self.transfer_bytes(layout), "cusha.load");
        gpu.synchronize();
        for _w in &trace.iterations {
            // One pass over every shard: all E entries, coalesced, plus the
            // concatenated-windows write-back over the vertex set.
            gpu.launch(
                s,
                &KernelSpec::balanced(
                    "cusha.shards",
                    e,
                    3.0,
                    e * self.entry_bytes,
                    v / 4, // window scatter back to the vertex array
                ),
            );
            gpu.launch(
                s,
                &KernelSpec::balanced("cusha.update", v, 2.0, v * self.vertex_bytes, 0),
            );
            // Host reads the convergence flag and re-arms the shard grid.
            gpu.d2h(s, 4, "cusha.flag");
            gpu.stall(s, self.iteration_overhead, "cusha.host-loop");
            gpu.synchronize();
        }
        let st = gpu.stats();
        Ok(BaselineRun {
            vertex_values: trace.vertex_values,
            edge_values: trace.edge_values,
            stats: BaselineStats {
                engine: "cusha",
                elapsed: st.elapsed,
                iterations: trace.iterations.len() as u32,
                bytes_streamed: 0,
                bytes_pcie: st.bytes_h2d + st.bytes_d2h,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_algorithms::{reference, Bfs, Cc};
    use gr_graph::gen;

    #[test]
    fn results_match_reference() {
        let layout = GraphLayout::build(&gen::uniform(300, 2400, 101).symmetrize());
        let run = CuSha::default()
            .run(&Cc, &layout, &Platform::paper_node())
            .unwrap();
        reference::check_cc_labels(&layout, &run.vertex_values);
    }

    #[test]
    fn oom_on_graphs_larger_than_device() {
        let layout = GraphLayout::build(&gen::uniform(1000, 20_000, 102));
        let err = match CuSha::default().run(
            &Bfs::new(0),
            &layout,
            &Platform::paper_node_scaled(1 << 16),
        ) {
            Err(e) => e,
            Ok(_) => panic!("graph should not fit"),
        };
        assert!(err.requested > err.capacity - err.capacity / 100);
    }

    #[test]
    fn per_iteration_cost_is_frontier_independent() {
        // Long path: frontier of 1-2 vertices, yet every iteration pays the
        // full shard pass — CuSha's road-network weakness.
        let n = 256u32;
        let el =
            gr_graph::EdgeList::from_edges(n, (0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
                .symmetrize();
        let layout = GraphLayout::build(&el);
        let run = CuSha::default()
            .run(&Bfs::new(0), &layout, &Platform::paper_node())
            .unwrap();
        assert_eq!(run.vertex_values, reference::bfs(&layout, 0));
        // Elapsed grows ~linearly with iterations (255 of them).
        let per_iter = run.stats.elapsed.as_secs_f64() / run.stats.iterations as f64;
        assert!(per_iter > 1e-5, "per-iteration cost should be fixed-ish");
    }
}

//! MapGraph-style in-GPU-memory engine (Fu et al., GRADES '14).
//!
//! Frontier-driven GAS over plain CSR/CSC with dynamic scheduling: work is
//! proportional to the active edge set (unlike CuSha's all-shards passes),
//! which makes it strong on traversal workloads — but its gather reads
//! neighbor state through unsorted CSR indices, paying uncoalesced accesses
//! that CuSha's G-Shards layout avoids (the paper's Table 4: MapGraph wins
//! some BFS/SSSP columns, loses PageRank on skewed graphs).

use gr_graph::GraphLayout;
use gr_sim::{Gpu, KernelSpec, OutOfMemory, Platform};
use graphreduce::GasProgram;

use crate::executor::{execute, WorkloadTrace};
use crate::{BaselineRun, BaselineStats};

/// MapGraph-style engine configuration.
#[derive(Clone, Debug)]
pub struct MapGraph {
    /// Bytes per CSR/CSC entry.
    pub entry_bytes: u64,
    /// Bytes of per-vertex state.
    pub vertex_bytes: u64,
    /// Host-side cost per iteration (frontier readback + scheduling
    /// strategy selection). MapGraph's dynamic scheduler keeps this
    /// tighter than CuSha's full-grid relaunch.
    pub iteration_overhead: gr_sim::SimDuration,
}

impl Default for MapGraph {
    fn default() -> Self {
        MapGraph {
            entry_bytes: 8,
            vertex_bytes: 16,
            iteration_overhead: gr_sim::SimDuration::from_micros(150),
        }
    }
}

impl MapGraph {
    /// Device bytes needed for a graph: the full in-memory footprint of
    /// Table 1 (CSR + CSC + vertex state + frontier queues + auxiliary
    /// buffers) — the quantity the paper classifies datasets by.
    pub fn device_bytes(&self, layout: &GraphLayout) -> u64 {
        gr_graph::in_memory_bytes(layout.num_vertices() as u64, layout.num_edges())
    }

    /// Bytes actually uploaded at load time (CSR + CSC + vertex state; the
    /// capacity *requirement* above also counts scratch built on-device).
    pub fn transfer_bytes(&self, layout: &GraphLayout) -> u64 {
        2 * layout.num_edges() * self.entry_bytes
            + layout.num_vertices() as u64 * (self.vertex_bytes + 8)
    }

    /// Run `program` to convergence on `platform`'s device.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        layout: &GraphLayout,
        platform: &Platform,
    ) -> Result<BaselineRun<P>, OutOfMemory> {
        let mut gpu = Gpu::new(platform);
        let bytes = self.device_bytes(layout);
        let _graph = gpu.alloc(bytes)?;
        let trace: WorkloadTrace<P> = execute(program, layout);
        let s = gpu.create_stream();

        gpu.h2d(s, self.transfer_bytes(layout), "mapgraph.load");
        gpu.synchronize();
        for w in &trace.iterations {
            if program.has_gather() {
                // Gather over the active edge set; neighbor reads are
                // uncoalesced through CSR (no shard-sorted locality).
                gpu.launch(
                    s,
                    &KernelSpec::balanced(
                        "mapgraph.gather",
                        w.active_in_edges,
                        3.0,
                        w.active_in_edges * self.entry_bytes,
                        // Two uncoalesced accesses per edge: the neighbor
                        // value read and the atomic reduction into the
                        // destination (CuSha's G-Shards avoid both).
                        2 * w.active_in_edges,
                    ),
                );
            }
            gpu.launch(
                s,
                &KernelSpec::balanced(
                    "mapgraph.apply",
                    w.frontier,
                    4.0,
                    w.frontier * self.vertex_bytes,
                    0,
                ),
            );
            // Frontier expansion (advance) over out-edges of changed
            // vertices, with dynamic (balanced) scheduling.
            gpu.launch(
                s,
                &KernelSpec::balanced(
                    "mapgraph.advance",
                    w.out_edges_of_changed,
                    2.0,
                    w.out_edges_of_changed * self.entry_bytes,
                    w.out_edges_of_changed / 2,
                ),
            );
            gpu.d2h(s, 8, "mapgraph.frontier-size");
            gpu.stall(s, self.iteration_overhead, "mapgraph.host-loop");
            gpu.synchronize();
        }
        let st = gpu.stats();
        Ok(BaselineRun {
            vertex_values: trace.vertex_values,
            edge_values: trace.edge_values,
            stats: BaselineStats {
                engine: "mapgraph",
                elapsed: st.elapsed,
                iterations: trace.iterations.len() as u32,
                bytes_streamed: 0,
                bytes_pcie: st.bytes_h2d + st.bytes_d2h,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cusha::CuSha;
    use gr_algorithms::{reference, Bfs, PageRank};
    use gr_graph::gen;

    #[test]
    fn results_match_reference() {
        let layout = GraphLayout::build(&gen::uniform(300, 2400, 111).symmetrize());
        let run = MapGraph::default()
            .run(&Bfs::new(0), &layout, &Platform::paper_node())
            .unwrap();
        assert_eq!(run.vertex_values, reference::bfs(&layout, 0));
    }

    #[test]
    fn oom_past_device_capacity() {
        let layout = GraphLayout::build(&gen::uniform(1000, 40_000, 112));
        assert!(MapGraph::default()
            .run(&Bfs::new(0), &layout, &Platform::paper_node_scaled(1 << 16))
            .is_err());
    }

    #[test]
    fn beats_cusha_on_sparse_frontier_traversal() {
        // Long-path BFS: MapGraph's frontier-proportional work vs CuSha's
        // full passes.
        let n = 1024u32;
        let el =
            gr_graph::EdgeList::from_edges(n, (0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
                .symmetrize();
        let layout = GraphLayout::build(&el);
        let plat = Platform::paper_node();
        let mg = MapGraph::default()
            .run(&Bfs::new(0), &layout, &plat)
            .unwrap();
        let cu = CuSha::default().run(&Bfs::new(0), &layout, &plat).unwrap();
        assert_eq!(mg.vertex_values, cu.vertex_values);
        assert!(
            mg.stats.elapsed < cu.stats.elapsed,
            "mapgraph {:?} vs cusha {:?}",
            mg.stats.elapsed,
            cu.stats.elapsed
        );
    }

    #[test]
    fn loses_to_cusha_on_dense_skewed_pagerank() {
        // All-active PageRank on a skewed graph: CuSha's coalesced shards
        // beat MapGraph's random CSR gathers (Table 4, kron-logn20 PR).
        let layout = GraphLayout::build(&gen::rmat_g500(14, 1_200_000, 113).symmetrize());
        let plat = Platform::paper_node();
        // Dense PR: tiny epsilon keeps (nearly) all vertices active so the
        // per-iteration kernel character dominates the comparison.
        let pr = PageRank {
            epsilon: 1e-9,
            max_iters: 15,
            ..Default::default()
        };
        let mg = MapGraph::default().run(&pr, &layout, &plat).unwrap();
        let cu = CuSha::default().run(&pr, &layout, &plat).unwrap();
        assert!(
            cu.stats.elapsed < mg.stats.elapsed,
            "cusha {:?} vs mapgraph {:?}",
            cu.stats.elapsed,
            mg.stats.elapsed
        );
    }
}

//! Shared workload executor for the baseline engines.
//!
//! Every baseline (GraphChi-, X-Stream-, CuSha-, MapGraph-style) computes
//! the *same* GAS semantics — the paper runs the same four algorithms on
//! all frameworks and compares wall time. This module runs the program once
//! with the exact BSP semantics of [`graphreduce::phases`] (so all engines
//! produce bit-identical results, cross-validated against the sequential
//! oracles) and records the per-iteration work counts each engine's cost
//! model consumes.

use gr_graph::{Bitmap, GraphLayout, Interval, Shard, TopoView};
use graphreduce::phases::{activate_shard, apply_shard, gather_shard, scatter_shard};
use graphreduce::{GasProgram, HostKernels, InitialFrontier};

/// Work counts of one iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterWork {
    /// Active vertices entering the iteration.
    pub frontier: u64,
    /// In-edges of active vertices (gather work).
    pub active_in_edges: u64,
    /// Vertices changed by apply.
    pub changed: u64,
    /// Out-edges of changed vertices (scatter / activation work; for
    /// push-style engines, the number of updates generated).
    pub out_edges_of_changed: u64,
    /// Vertices activated for the next iteration.
    pub activated: u64,
}

/// Results + per-iteration work of one workload execution.
pub struct WorkloadTrace<P: GasProgram> {
    /// Final vertex values.
    pub vertex_values: Vec<P::VertexValue>,
    /// Final edge values.
    pub edge_values: Vec<P::EdgeValue>,
    /// One entry per executed iteration.
    pub iterations: Vec<IterWork>,
}

/// Execute `program` on `layout` to convergence with BSP GAS semantics.
pub fn execute<P: GasProgram>(program: &P, layout: &GraphLayout) -> WorkloadTrace<P> {
    let n = layout.num_vertices();
    let whole = Shard {
        id: 0,
        interval: Interval { start: 0, end: n },
        in_edges: 0..layout.num_edges() as usize,
        out_edges: 0..layout.num_edges() as usize,
    };
    let mut vertex_values: Vec<P::VertexValue> = (0..n)
        .map(|v| program.init_vertex(v, layout.csr.degree(v) as u32))
        .collect();
    let mut edge_values = vec![P::EdgeValue::default(); layout.num_edges() as usize];
    let mut gather_temp = vec![program.gather_identity(); n as usize];
    let mut frontier = match program.initial_frontier() {
        InitialFrontier::All => Bitmap::full(n),
        InitialFrontier::Single(v) => {
            let mut b = Bitmap::new(n);
            if n > 0 {
                b.set(v);
            }
            b
        }
    };
    let mut iterations = Vec::new();
    let mut iter = 0u32;
    while iter < program.max_iterations() && frontier.count() > 0 {
        let mut w = IterWork {
            frontier: frontier.count(),
            ..Default::default()
        };
        if program.has_gather() {
            let (a, e) = gather_shard(
                program,
                TopoView::raw(layout),
                &whole,
                &vertex_values,
                &edge_values,
                &layout.weights,
                &frontier,
                &mut gather_temp,
                HostKernels::Adaptive,
            );
            debug_assert_eq!(a, w.frontier);
            w.active_in_edges = e;
        }
        let changed_ids = apply_shard(
            program,
            &whole,
            &mut vertex_values,
            &gather_temp,
            &frontier,
            iter,
            HostKernels::Adaptive,
        );
        let mut changed = Bitmap::new(n);
        for v in changed_ids {
            changed.set(v);
        }
        w.changed = changed.count();
        if program.has_scatter() {
            scatter_shard(
                program,
                TopoView::raw(layout),
                &whole,
                &vertex_values,
                &mut edge_values,
                &changed,
                HostKernels::Adaptive,
            );
        }
        let mut next = Bitmap::new(n);
        let (walked, activated) = activate_shard(
            TopoView::raw(layout),
            &whole,
            &changed,
            &mut next,
            HostKernels::Adaptive,
        );
        w.out_edges_of_changed = walked;
        w.activated = activated;
        iterations.push(w);
        frontier = next;
        iter += 1;
    }
    WorkloadTrace {
        vertex_values,
        edge_values,
        iterations,
    }
}

/// Total in-edges gathered over the whole run.
pub fn total_gathered(iters: &[IterWork]) -> u64 {
    iters.iter().map(|w| w.active_in_edges).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_algorithms::{reference, Bfs, Cc};
    use gr_graph::gen;

    #[test]
    fn matches_sequential_gas_interpreter() {
        let layout = GraphLayout::build(&gen::uniform(300, 2400, 81).symmetrize());
        let trace = execute(&Cc, &layout);
        let (want, _, want_iters) = reference::run_gas(&Cc, &layout);
        assert_eq!(trace.vertex_values, want);
        assert_eq!(trace.iterations.len() as u32, want_iters);
    }

    #[test]
    fn bfs_trace_records_frontier_wave() {
        let layout = GraphLayout::build(&gen::uniform(300, 2400, 82).symmetrize());
        let trace = execute(&Bfs::new(0), &layout);
        assert_eq!(trace.iterations[0].frontier, 1);
        assert_eq!(trace.vertex_values, reference::bfs(&layout, 0));
        // Activation chains into the next frontier.
        for w in trace.iterations.windows(2) {
            assert_eq!(w[0].activated, w[1].frontier);
        }
    }
}

//! X-Stream-style edge-centric CPU engine (Rou et al., SOSP '13).
//!
//! Streaming-partitions design: every iteration, the **entire edge list**
//! is streamed sequentially (edge-centric scatter — there is no per-edge
//! frontier indexing), updates are generated for edges whose source is
//! active, shuffled to their destination partitions, and a gather pass
//! applies them. Vertex state is partitioned to fit cache, so vertex
//! accesses are cheap; the costs are the full edge stream per iteration
//! plus the update traffic.
//!
//! This structure is why X-Stream loses mildly on all-active workloads
//! (PageRank) but massively on sparse-frontier ones (BFS on power-law
//! graphs): it streams every edge no matter how small the frontier —
//! exactly the behaviour Table 3 exposes.

use gr_graph::GraphLayout;
use gr_sim::{CpuClock, CpuWork, HostConfig, SimDuration};
use graphreduce::GasProgram;

use crate::executor::{execute, WorkloadTrace};
use crate::{BaselineRun, BaselineStats};

/// X-Stream-style engine configuration.
#[derive(Clone, Debug)]
pub struct XStream {
    /// Worker threads (the paper runs 16).
    pub threads: u32,
    /// Streaming partitions (vertex state of one partition fits cache).
    pub num_partitions: u32,
    /// Effective edge streaming bandwidth in GB/s. Well below DRAM peak:
    /// X-Stream streams through file buffers with copies.
    pub stream_bandwidth_gbps: f64,
    /// Effective update-file bandwidth in GB/s: updates are appended to
    /// per-partition buckets and re-read — bucketed, non-contiguous
    /// traffic that lands well below the edge-stream rate. This is what
    /// makes X-Stream disproportionally slow on power-law graphs whose
    /// dense frontiers generate update volume comparable to |E| every
    /// iteration (Table 2's kron vs belgium spread).
    pub update_bandwidth_gbps: f64,
    /// Bytes per streamed edge record (src, dst, weight + framing).
    pub edge_record_bytes: u64,
    /// Bytes per update record, counted once written + once read.
    pub update_record_bytes: u64,
    /// Scalar ops per streamed edge (dispatch + predicate).
    pub ops_per_edge: f64,
    /// Scalar ops per update (shuffle bucket + gather apply).
    pub ops_per_update: f64,
    /// Fixed cost per phase per iteration (thread fork/join over
    /// partitions).
    pub phase_overhead: SimDuration,
}

impl Default for XStream {
    fn default() -> Self {
        XStream {
            threads: 16,
            num_partitions: 16,
            stream_bandwidth_gbps: 4.0,
            update_bandwidth_gbps: 1.5,
            edge_record_bytes: 24,
            update_record_bytes: 16,
            ops_per_edge: 6.0,
            ops_per_update: 10.0,
            phase_overhead: SimDuration::from_micros(50),
        }
    }
}

impl XStream {
    /// Run `program` to convergence, timing with `host`'s cost model.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        layout: &GraphLayout,
        host: &HostConfig,
    ) -> BaselineRun<P> {
        let trace: WorkloadTrace<P> = execute(program, layout);
        let e = layout.num_edges();
        let mut clock = CpuClock::new();
        let mut bytes_streamed = 0u64;
        let stream =
            |b: u64| SimDuration::from_secs_f64(b as f64 / (self.stream_bandwidth_gbps * 1e9));
        for w in &trace.iterations {
            // Scatter: stream ALL edges; produce one update per in-edge of
            // an active destination (≈ edges out of the frontier on the
            // symmetric inputs the paper uses).
            let updates = if program.has_gather() {
                w.active_in_edges
            } else {
                w.out_edges_of_changed
            };
            let edge_bytes = e * self.edge_record_bytes;
            bytes_streamed += edge_bytes;
            clock.charge_raw(stream(edge_bytes) + self.phase_overhead);
            clock.charge(
                host,
                self.threads,
                &CpuWork::new("xstream.scatter", e, self.ops_per_edge, 0, 0),
            );
            // Shuffle: updates written to destination partition buckets and
            // read back — bucketed writes miss cache across partitions.
            let upd_bytes = updates * self.update_record_bytes * 2;
            bytes_streamed += upd_bytes;
            let upd_time =
                SimDuration::from_secs_f64(upd_bytes as f64 / (self.update_bandwidth_gbps * 1e9));
            clock.charge_raw(upd_time + self.phase_overhead);
            clock.charge(
                host,
                self.threads,
                &CpuWork::new(
                    "xstream.shuffle",
                    updates,
                    self.ops_per_update / 2.0,
                    0,
                    updates / 4,
                ),
            );
            // Gather: apply updates to partition-resident vertex state.
            clock.charge_raw(self.phase_overhead);
            clock.charge(
                host,
                self.threads,
                &CpuWork::new("xstream.gather", updates, self.ops_per_update / 2.0, 0, 0),
            );
        }
        BaselineRun {
            vertex_values: trace.vertex_values,
            edge_values: trace.edge_values,
            stats: BaselineStats {
                engine: "x-stream",
                elapsed: clock.elapsed(),
                iterations: trace.iterations.len() as u32,
                bytes_streamed,
                bytes_pcie: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_algorithms::{reference, Bfs, Cc, PageRank};
    use gr_graph::gen;

    fn host() -> HostConfig {
        HostConfig::xeon_e5_2670()
    }

    #[test]
    fn results_match_reference() {
        let layout = GraphLayout::build(&gen::uniform(400, 3000, 91).symmetrize());
        let run = XStream::default().run(&Cc, &layout, &host());
        reference::check_cc_labels(&layout, &run.vertex_values);
        let bfs = XStream::default().run(&Bfs::new(0), &layout, &host());
        assert_eq!(bfs.vertex_values, reference::bfs(&layout, 0));
    }

    #[test]
    fn streams_all_edges_every_iteration() {
        let layout = GraphLayout::build(&gen::uniform(400, 3000, 92).symmetrize());
        let run = XStream::default().run(&Bfs::new(0), &layout, &host());
        let xs = XStream::default();
        let min_bytes = run.stats.iterations as u64 * layout.num_edges() * xs.edge_record_bytes;
        assert!(
            run.stats.bytes_streamed >= min_bytes,
            "must stream E edges per iteration"
        );
    }

    #[test]
    fn sparse_frontier_costs_almost_as_much_as_dense() {
        // BFS (sparse frontier) and PageRank-style (dense) per-iteration
        // costs differ only by update traffic: the edge stream dominates.
        let layout = GraphLayout::build(&gen::uniform(2000, 60_000, 93).symmetrize());
        let bfs = XStream::default().run(&Bfs::new(0), &layout, &host());
        let pr = XStream::default().run(&PageRank::default(), &layout, &host());
        let per_iter_bfs = bfs.stats.elapsed.as_secs_f64() / bfs.stats.iterations as f64;
        let per_iter_pr = pr.stats.elapsed.as_secs_f64() / pr.stats.iterations as f64;
        assert!(
            per_iter_bfs > 0.25 * per_iter_pr,
            "bfs/iter {per_iter_bfs} vs pr/iter {per_iter_pr}"
        );
    }
}

//! # gr-baselines — the frameworks GraphReduce is compared against
//!
//! Faithful behavioural models of the four systems in the paper's
//! evaluation, all running the same [`graphreduce::GasProgram`]s and
//! validated for bit-identical results against the sequential oracles:
//!
//! | Engine | Style | Key behaviour modeled |
//! |---|---|---|
//! | [`graphchi::GraphChi`] | CPU, vertex-centric PSW | full shard rewrite per iteration, P² sliding windows |
//! | [`xstream::XStream`] | CPU, edge-centric streaming | streams ALL edges every iteration + update shuffle |
//! | [`cusha::CuSha`] | GPU in-memory G-Shards | coalesced all-shard passes, frontier-oblivious |
//! | [`mapgraph::MapGraph`] | GPU in-memory frontier GAS | frontier-proportional work, uncoalesced CSR gathers |
//! | [`totem::Totem`] | hybrid CPU+GPU static split | fixed GPU sub-graph, CPU-side bottleneck (Section 2.2) |
//!
//! The CPU engines are timed with [`gr_sim::cpu`]'s host model; the GPU
//! engines run on the same [`gr_sim::Gpu`] virtual device GraphReduce uses
//! (and fail with OOM when a graph exceeds device memory — their defining
//! limitation, Table 1).

pub mod cusha;
pub mod executor;
pub mod graphchi;
pub mod mapgraph;
pub mod totem;
pub mod xstream;

use gr_sim::SimDuration;
use graphreduce::GasProgram;

pub use cusha::CuSha;
pub use executor::{execute, IterWork, WorkloadTrace};
pub use graphchi::GraphChi;
pub use mapgraph::MapGraph;
pub use totem::{Totem, TotemSplit};
pub use xstream::XStream;

/// Timing summary of one baseline run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineStats {
    /// Engine name as printed in the tables.
    pub engine: &'static str,
    /// Simulated wall time.
    pub elapsed: SimDuration,
    /// Iterations to convergence.
    pub iterations: u32,
    /// Bytes streamed through the storage/page-cache path (CPU engines).
    pub bytes_streamed: u64,
    /// Bytes moved over PCIe (GPU engines).
    pub bytes_pcie: u64,
}

/// Results + timing of one baseline run.
pub struct BaselineRun<P: GasProgram> {
    /// Final vertex values (identical to every other engine's).
    pub vertex_values: Vec<P::VertexValue>,
    /// Final edge values.
    pub edge_values: Vec<P::EdgeValue>,
    /// Timing summary.
    pub stats: BaselineStats,
}

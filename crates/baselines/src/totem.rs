//! Totem-style hybrid CPU+GPU engine (Gharaibeh et al., PACT '12).
//!
//! The paper's Section 2.2/7 discusses Totem as the existing answer to
//! out-of-memory graphs: **statically** partition the graph once, placing
//! high-degree vertices' edges in GPU memory (as much as fits) and the
//! low-degree remainder on the host; every iteration both sides process
//! their partitions and exchange boundary messages. Its two weaknesses —
//! the GPU only ever sees a *fixed* sub-graph (underutilization as inputs
//! grow) and the CPU side becomes the bottleneck — emerge directly from
//! this structure, which is exactly why GraphReduce streams shards
//! instead.

use gr_graph::GraphLayout;
use gr_sim::{cpu_time, CpuWork, Gpu, KernelSpec, Platform, SimDuration};
use graphreduce::GasProgram;

use crate::executor::{execute, WorkloadTrace};
use crate::{BaselineRun, BaselineStats};

/// Totem-style engine configuration.
#[derive(Clone, Debug)]
pub struct Totem {
    /// Bytes per edge of *full state* in the GPU partition (topology +
    /// edge data + message buffers — the same accounting Table 1 uses to
    /// classify what "fits"; only `gpu_transfer_bytes` of it crosses PCIe
    /// at load time).
    pub gpu_entry_bytes: u64,
    /// Bytes per edge actually uploaded at load time.
    pub gpu_transfer_bytes: u64,
    /// Bytes per edge in the host partition.
    pub cpu_entry_bytes: u64,
    /// Bytes per boundary message.
    pub message_bytes: u64,
    /// Host threads for the CPU partition.
    pub threads: u32,
    /// Scalar ops per edge on the CPU side.
    pub cpu_ops_per_edge: f64,
}

impl Default for Totem {
    fn default() -> Self {
        Totem {
            gpu_entry_bytes: 40,
            gpu_transfer_bytes: 8,
            cpu_entry_bytes: 16,
            message_bytes: 8,
            threads: 16,
            cpu_ops_per_edge: 10.0,
        }
    }
}

/// How a graph was split (reported for the underutilization analysis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TotemSplit {
    /// Vertices whose out-edges live on the GPU.
    pub gpu_vertices: u32,
    /// Edges resident on the GPU.
    pub gpu_edges: u64,
    /// Edges resident on the host.
    pub cpu_edges: u64,
    /// Directed edges crossing the partition (boundary messages per full
    /// iteration).
    pub boundary_edges: u64,
}

impl TotemSplit {
    /// Fraction of the edge set the GPU processes.
    pub fn gpu_fraction(&self) -> f64 {
        let total = self.gpu_edges + self.cpu_edges;
        if total == 0 {
            0.0
        } else {
            self.gpu_edges as f64 / total as f64
        }
    }
}

impl Totem {
    /// Static degree-ordered split: highest-degree vertices first, until
    /// the device is full (Totem's heuristic for power-law inputs).
    pub fn split(&self, layout: &GraphLayout, device_capacity: u64) -> TotemSplit {
        let n = layout.num_vertices();
        let mut order: Vec<u32> = (0..n).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(layout.csr.degree(v)));
        let mut on_gpu = vec![false; n as usize];
        let mut gpu_edges = 0u64;
        let mut gpu_vertices = 0u32;
        let mut bytes = 0u64;
        for &v in &order {
            let d = layout.csr.degree(v);
            let need = d * self.gpu_entry_bytes + 60;
            if bytes + need > device_capacity {
                break;
            }
            bytes += need;
            on_gpu[v as usize] = true;
            gpu_vertices += 1;
            gpu_edges += d;
        }
        let mut boundary = 0u64;
        for v in 0..n {
            for (dst, _) in layout.csr.entries(v) {
                if on_gpu[v as usize] != on_gpu[dst as usize] {
                    boundary += 1;
                }
            }
        }
        TotemSplit {
            gpu_vertices,
            gpu_edges,
            cpu_edges: layout.num_edges() - gpu_edges,
            boundary_edges: boundary,
        }
    }

    /// Run `program` to convergence. Never refuses a graph (that is
    /// Totem's selling point) — but the GPU share shrinks as graphs grow.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        layout: &GraphLayout,
        platform: &Platform,
    ) -> (BaselineRun<P>, TotemSplit) {
        let split = self.split(layout, platform.device.mem_capacity);
        let trace: WorkloadTrace<P> = execute(program, layout);
        let mut gpu = Gpu::new(platform);
        let s = gpu.create_stream();

        // Static load of the GPU partition, once.
        gpu.h2d(
            s,
            split.gpu_edges * self.gpu_transfer_bytes + split.gpu_vertices as u64 * 16,
            "totem.load",
        );
        gpu.synchronize();

        let mut cpu_total = SimDuration::ZERO;
        for _w in &trace.iterations {
            // GPU side: one pass over its resident edges.
            gpu.launch(
                s,
                &KernelSpec::balanced(
                    "totem.gpu",
                    split.gpu_edges,
                    3.0,
                    split.gpu_edges * self.gpu_transfer_bytes,
                    split.gpu_edges / 8,
                ),
            );
            // Boundary exchange, both directions.
            let msg = split.boundary_edges * self.message_bytes;
            gpu.d2h(s, msg / 2, "totem.messages.out");
            gpu.h2d(s, msg / 2, "totem.messages.in");
            // CPU side runs concurrently; the BSP barrier takes the max,
            // which we model by stalling the GPU when the CPU is slower.
            let cpu = if split.cpu_edges == 0 {
                SimDuration::ZERO
            } else {
                cpu_time(
                    &platform.host,
                    self.threads,
                    &CpuWork::new(
                        "totem.cpu",
                        split.cpu_edges,
                        self.cpu_ops_per_edge,
                        split.cpu_edges * self.cpu_entry_bytes,
                        split.cpu_edges / 4,
                    ),
                ) + platform.host.pass_overhead
            };
            cpu_total += cpu;
            if !cpu.is_zero() {
                gpu.stall(s, cpu, "totem.cpu-barrier");
            }
            gpu.synchronize();
        }
        let st = gpu.stats();
        (
            BaselineRun {
                vertex_values: trace.vertex_values,
                edge_values: trace.edge_values,
                stats: BaselineStats {
                    engine: "totem",
                    elapsed: st.elapsed,
                    iterations: trace.iterations.len() as u32,
                    bytes_streamed: 0,
                    bytes_pcie: st.bytes_h2d + st.bytes_d2h,
                },
            },
            split,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_algorithms::{reference, Cc, PageRank};
    use gr_graph::gen;

    #[test]
    fn results_match_reference() {
        let layout = GraphLayout::build(&gen::uniform(300, 2400, 121).symmetrize());
        let (run, _) = Totem::default().run(&Cc, &layout, &Platform::paper_node());
        reference::check_cc_labels(&layout, &run.vertex_values);
    }

    #[test]
    fn split_prefers_high_degree_vertices() {
        let layout = GraphLayout::build(&gen::rmat_g500(12, 100_000, 122));
        let t = Totem::default();
        // Device that fits roughly half the edge bytes.
        let cap = layout.num_edges() * t.gpu_entry_bytes / 2;
        let split = t.split(&layout, cap);
        assert!(split.gpu_edges > 0 && split.cpu_edges > 0);
        // Power law: a small fraction of vertices carries most GPU edges.
        assert!(
            (split.gpu_vertices as f64) < 0.5 * layout.num_vertices() as f64,
            "hubs first: {} vertices hold {} edges",
            split.gpu_vertices,
            split.gpu_edges
        );
        assert!(split.gpu_fraction() > 0.4);
    }

    #[test]
    fn gpu_fraction_shrinks_as_graphs_grow() {
        // Totem's defining weakness (Section 2.2): fixed device memory, so
        // bigger graphs leave a smaller share on the GPU.
        let t = Totem::default();
        let cap = 400_000u64;
        let small = GraphLayout::build(&gen::rmat_g500(11, 30_000, 123));
        let large = GraphLayout::build(&gen::rmat_g500(13, 300_000, 123));
        let fs = t.split(&small, cap).gpu_fraction();
        let fl = t.split(&large, cap).gpu_fraction();
        assert!(fs > fl, "small {fs:.2} vs large {fl:.2}");
    }

    #[test]
    fn cpu_side_becomes_the_bottleneck_on_large_graphs() {
        // With a tiny device, Totem degenerates toward CPU-only speed and
        // loses its edge over a pure CPU engine.
        let layout = GraphLayout::build(&gen::rmat_g500(12, 150_000, 124).symmetrize());
        let pr = PageRank {
            epsilon: 1e-6,
            max_iters: 10,
            ..Default::default()
        };
        let full = Platform::paper_node();
        let mut tiny = Platform::paper_node();
        tiny.device.mem_capacity = 50_000;

        let (fast, split_fast) = Totem::default().run(&pr, &layout, &full);
        let (slow, split_slow) = Totem::default().run(&pr, &layout, &tiny);
        assert!(split_fast.gpu_fraction() > 0.99);
        assert!(split_slow.gpu_fraction() < 0.2);
        // The CPU partition dominates once the GPU share collapses: the
        // hybrid loses most of its advantage (Section 2.2's
        // "underutilization of GPU's fullest processing power").
        assert!(
            slow.stats.elapsed.as_secs_f64() > 2.0 * fast.stats.elapsed.as_secs_f64(),
            "tiny-GPU totem {:?} should trail full-GPU totem {:?}",
            slow.stats.elapsed,
            fast.stats.elapsed
        );
        // Results stay identical either way.
        assert_eq!(fast.vertex_values, slow.vertex_values);
    }
}

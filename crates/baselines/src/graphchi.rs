//! GraphChi-style vertex-centric CPU engine (Kyrola et al., OSDI '12).
//!
//! Parallel-Sliding-Windows design: the graph lives in `P` on-storage
//! shards sorted by destination; executing one interval loads its shard
//! plus a sliding window from every other shard, runs vertex-centric
//! updates, and **writes the edges back** (all messages flow through edge
//! values in GraphChi). Every iteration therefore rewrites essentially the
//! whole edge set — the reason it trails X-Stream in the paper's Table 3 —
//! and the `P²` window loads add per-shard overhead as graphs grow.
//!
//! The paper sizes inputs to fit host RAM, so "storage" here is the page
//! cache; the effective streaming bandwidth is still well below DRAM copy
//! speed because GraphChi moves data through its block cache with
//! (de)serialization.

use gr_graph::GraphLayout;
use gr_sim::{CpuClock, CpuWork, HostConfig, SimDuration};
use graphreduce::GasProgram;

use crate::executor::{execute, WorkloadTrace};
use crate::{BaselineRun, BaselineStats};

/// GraphChi-style engine configuration.
#[derive(Clone, Debug)]
pub struct GraphChi {
    /// Worker threads.
    pub threads: u32,
    /// Execution memory budget (determines the shard count `P`); GraphChi
    /// defaults to a fraction of host RAM.
    pub mem_budget: u64,
    /// Effective shard streaming bandwidth in GB/s (block cache +
    /// serialization, not raw DRAM).
    pub stream_bandwidth_gbps: f64,
    /// Bytes per stored edge (endpoint + edge data + framing).
    pub edge_record_bytes: u64,
    /// Scalar ops per edge in the vertex-centric update loop.
    pub ops_per_edge: f64,
    /// Fixed cost of opening one sliding window.
    pub window_overhead: SimDuration,
}

impl Default for GraphChi {
    fn default() -> Self {
        GraphChi {
            threads: 16,
            mem_budget: 8 << 30, // a quarter of the paper host's 32 GB
            stream_bandwidth_gbps: 1.2,
            edge_record_bytes: 16,
            ops_per_edge: 18.0,
            window_overhead: SimDuration::from_micros(150),
        }
    }
}

impl GraphChi {
    /// Budget scaled the same way datasets are (keeps `P` realistic at
    /// laptop scale).
    pub fn scaled(scale: u64) -> Self {
        GraphChi {
            mem_budget: ((8u64 << 30) / scale).max(1 << 10),
            ..Default::default()
        }
    }

    /// Shard count for a graph (the PSW `P`).
    pub fn num_shards(&self, layout: &GraphLayout) -> u64 {
        let graph_bytes =
            layout.num_edges() * self.edge_record_bytes + layout.num_vertices() as u64 * 8;
        graph_bytes.div_ceil(self.mem_budget).max(1)
    }

    /// Run `program` to convergence, timing with `host`'s cost model.
    pub fn run<P: GasProgram>(
        &self,
        program: &P,
        layout: &GraphLayout,
        host: &HostConfig,
    ) -> BaselineRun<P> {
        let trace: WorkloadTrace<P> = execute(program, layout);
        let e = layout.num_edges();
        let p = self.num_shards(layout);
        let mut clock = CpuClock::new();
        let mut bytes_streamed = 0u64;
        let stream =
            |b: u64| SimDuration::from_secs_f64(b as f64 / (self.stream_bandwidth_gbps * 1e9));
        for _w in &trace.iterations {
            // Per iteration: read every shard once (in-edges), read the
            // sliding out-edge windows (≈ the edge set again), and write
            // every edge's value back. GraphChi has no cheap frontier mode:
            // shards stream regardless of active vertices.
            let read_bytes = 2 * e * self.edge_record_bytes;
            let write_bytes = e * self.edge_record_bytes;
            bytes_streamed += read_bytes + write_bytes;
            clock.charge_raw(stream(read_bytes + write_bytes));
            // P shards x P windows each.
            clock.charge_raw(self.window_overhead * (p * p));
            // Vertex-centric update: random access into vertex state per
            // edge endpoint.
            clock.charge(
                host,
                self.threads,
                &CpuWork::new("graphchi.update", e, self.ops_per_edge, 0, e / 2),
            );
        }
        BaselineRun {
            vertex_values: trace.vertex_values,
            edge_values: trace.edge_values,
            stats: BaselineStats {
                engine: "graphchi",
                elapsed: clock.elapsed(),
                iterations: trace.iterations.len() as u32,
                bytes_streamed,
                bytes_pcie: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xstream::XStream;
    use gr_algorithms::{reference, Cc, PageRank, Sssp};
    use gr_graph::gen;

    fn host() -> HostConfig {
        HostConfig::xeon_e5_2670()
    }

    #[test]
    fn results_match_reference() {
        let layout = GraphLayout::build(&gen::with_random_weights(
            gen::uniform(300, 2400, 95),
            8.0,
            96,
        ));
        let run = GraphChi::default().run(&Sssp::new(0), &layout, &host());
        assert_eq!(run.vertex_values, reference::sssp(&layout, 0));
    }

    #[test]
    fn shard_count_scales_with_graph_size() {
        let small = GraphLayout::build(&gen::uniform(100, 1000, 97));
        let chi = GraphChi {
            mem_budget: 4096,
            ..Default::default()
        };
        assert!(chi.num_shards(&small) > 1);
        assert_eq!(GraphChi::default().num_shards(&small), 1);
    }

    #[test]
    fn slower_than_xstream_on_dense_iterations() {
        // The paper's Table 3: GraphChi trails X-Stream on every input
        // (vertex-centric random access + edge write-back).
        let layout = GraphLayout::build(&gen::rmat_g500(11, 30_000, 98).symmetrize());
        let chi = GraphChi::scaled(64).run(&PageRank::default(), &layout, &host());
        let xs = XStream::default().run(&PageRank::default(), &layout, &host());
        assert_eq!(chi.stats.iterations, xs.stats.iterations);
        assert!(
            chi.stats.elapsed > xs.stats.elapsed,
            "graphchi {:?} should trail x-stream {:?}",
            chi.stats.elapsed,
            xs.stats.elapsed
        );
    }

    #[test]
    fn cc_matches_union_find() {
        let layout = GraphLayout::build(&gen::uniform(500, 1200, 99).symmetrize());
        let run = GraphChi::default().run(&Cc, &layout, &host());
        reference::check_cc_labels(&layout, &run.vertex_values);
    }
}

//! Property tests over the synthetic generators: exact counts, valid
//! endpoints, determinism, and class-specific structure for arbitrary
//! parameters.

use proptest::prelude::*;

use gr_graph::{gen, Dataset};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rmat_exact_and_deterministic(scale in 2u32..13, edges in 1u64..5000, seed in any::<u64>()) {
        let a = gen::rmat_g500(scale, edges, seed);
        prop_assert_eq!(a.num_vertices, 1u32 << scale);
        prop_assert_eq!(a.num_edges() as u64, edges);
        prop_assert!(a.edges.iter().all(|&(s, d)| s < a.num_vertices && d < a.num_vertices));
        prop_assert_eq!(a, gen::rmat_g500(scale, edges, seed));
    }

    #[test]
    fn uniform_has_no_self_loops(v in 2u32..2000, e in 0u64..5000, seed in any::<u64>()) {
        let g = gen::uniform(v, e, seed);
        prop_assert_eq!(g.num_edges() as u64, e);
        prop_assert!(g.edges.iter().all(|&(s, d)| s != d && s < v && d < v));
    }

    #[test]
    fn grid2d_exact_counts(v in 2u32..3000, e in 1u64..8000, seed in any::<u64>()) {
        let g = gen::grid2d_with_edges(v, e, seed);
        prop_assert_eq!(g.num_vertices, v);
        prop_assert_eq!(g.num_edges() as u64, e);
        prop_assert!(g.edges.iter().all(|&(s, d)| s < v && d < v));
    }

    #[test]
    fn stencil3d_exact_counts(v in 8u32..3000, e in 1u64..8000, seed in any::<u64>()) {
        let g = gen::stencil3d(v, e, seed);
        prop_assert_eq!(g.num_vertices, v);
        prop_assert_eq!(g.num_edges() as u64, e);
        prop_assert!(g.edges.iter().all(|&(s, d)| s < v && d < v));
    }

    #[test]
    fn smallworld_exact_counts(v in 3u32..2000, e in 1u64..6000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let g = gen::smallworld(v, e, p, seed);
        prop_assert_eq!(g.num_edges() as u64, e);
        prop_assert!(g.edges.iter().all(|&(s, d)| s != d && s < v && d < v));
    }

    #[test]
    fn weights_are_in_range(v in 2u32..500, e in 1u64..2000, w in 1.5f32..100.0, seed in any::<u64>()) {
        let g = gen::with_random_weights(gen::uniform(v, e, seed), w, seed ^ 1);
        let ws = g.weights.unwrap();
        prop_assert_eq!(ws.len() as u64, e);
        prop_assert!(ws.iter().all(|&x| x >= 1.0 && x < w));
    }

    /// Every dataset stand-in honours its advertised counts at any
    /// power-of-two scale that keeps it nontrivial.
    #[test]
    fn dataset_standins_hit_counts(scale_log in 8u32..14) {
        let scale = 1u64 << scale_log;
        for ds in Dataset::IN_MEMORY.into_iter().chain(Dataset::OUT_OF_MEMORY) {
            let g = ds.generate(scale);
            prop_assert_eq!(g.num_edges() as u64, ds.edges(scale), "{}", ds.name());
            prop_assert!(g.num_vertices >= ds.vertices(scale), "{}", ds.name());
        }
    }
}

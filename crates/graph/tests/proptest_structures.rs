//! Property tests over the graph substrate: layout round-trips, partition
//! invariants, shard coverage, and model-based bitmap checks.

use std::collections::HashSet;

use proptest::prelude::*;

use gr_graph::{
    build_shards, validate_partition, Bitmap, EdgeList, EvenEdgePartition, EvenVertexPartition,
    GraphLayout, PartitionLogic,
};

fn edge_list() -> impl Strategy<Value = EdgeList> {
    (2u32..150).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..400)
            .prop_map(move |edges| EdgeList::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every input edge appears exactly once in CSC and exactly once in
    /// CSR, and their canonical ids agree on endpoints.
    #[test]
    fn layout_preserves_the_multiset_of_edges(el in edge_list()) {
        let g = GraphLayout::build(&el);
        prop_assert_eq!(g.num_edges() as usize, el.num_edges());

        let mut want = el.edges.clone();
        want.sort_unstable();

        // CSC view.
        let mut from_csc: Vec<(u32, u32)> = (0..g.num_vertices())
            .flat_map(|v| g.csc.entries(v).map(move |(src, _)| (src, v)))
            .collect();
        from_csc.sort_unstable();
        prop_assert_eq!(&from_csc, &want);

        // CSR view, resolving through canonical edge ids.
        let mut from_csr: Vec<(u32, u32)> = (0..g.num_vertices())
            .flat_map(|v| g.csr.entries(v).map(move |(dst, _)| (v, dst)))
            .collect();
        from_csr.sort_unstable();
        prop_assert_eq!(&from_csr, &want);

        // Canonical ids form a permutation and endpoints match both views.
        let mut seen = vec![false; el.num_edges()];
        for v in 0..g.num_vertices() {
            for (dst, eid) in g.csr.entries(v) {
                prop_assert!(!seen[eid as usize], "duplicate canonical id");
                seen[eid as usize] = true;
                prop_assert_eq!(g.edge_endpoints(eid), (v, dst));
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// Weights follow edges through the canonical reordering.
    #[test]
    fn layout_keeps_weights_attached(el in edge_list()) {
        let weights: Vec<f32> = (0..el.num_edges()).map(|i| i as f32 + 0.5).collect();
        let pairs: HashSet<(u32, u32, u32)> = el
            .edges
            .iter()
            .zip(&weights)
            .map(|(&(s, d), &w)| (s, d, w as u32))
            .collect();
        let g = GraphLayout::build(&el.clone().with_weights(weights));
        for v in 0..g.num_vertices() {
            for (src, eid) in g.csc.entries(v) {
                prop_assert!(pairs.contains(&(src, v, g.weights[eid as usize] as u32)));
            }
        }
    }

    /// Both partition logics produce valid covering partitions whose shards
    /// cover every edge exactly once, for any shard budget.
    #[test]
    fn partitions_are_valid_and_cover(el in edge_list(), p in 1usize..40) {
        let g = GraphLayout::build(&el);
        for logic in [&EvenEdgePartition as &dyn PartitionLogic, &EvenVertexPartition] {
            let intervals = logic.partition(&g, p);
            validate_partition(&intervals, g.num_vertices()).unwrap();
            prop_assert!(intervals.len() <= p.max(1));
            let shards = build_shards(&g, &intervals);
            let in_total: u64 = shards.iter().map(|s| s.num_in_edges()).sum();
            let out_total: u64 = shards.iter().map(|s| s.num_out_edges()).sum();
            prop_assert_eq!(in_total, g.num_edges());
            prop_assert_eq!(out_total, g.num_edges());
        }
    }

    /// Symmetrize yields a symmetric edge multiset and dedup is idempotent.
    #[test]
    fn symmetrize_and_dedup(el in edge_list()) {
        let sym = el.symmetrize();
        let set: HashSet<(u32, u32)> = sym.edges.iter().copied().collect();
        for &(s, d) in &sym.edges {
            prop_assert!(set.contains(&(d, s)));
        }
        let d1 = el.dedup();
        let d2 = d1.dedup();
        prop_assert_eq!(&d1, &d2);
        let uniq: HashSet<_> = d1.edges.iter().copied().collect();
        prop_assert_eq!(uniq.len(), d1.num_edges());
        prop_assert!(d1.edges.iter().all(|&(s, d)| s != d));
    }

    /// Text IO round-trips arbitrary edge lists.
    #[test]
    fn text_io_roundtrip(el in edge_list()) {
        let mut buf = Vec::new();
        el.write_text(&mut buf).unwrap();
        let back = EdgeList::read_text(&buf[..]).unwrap();
        prop_assert_eq!(el, back);
    }
}

#[derive(Clone, Debug)]
enum BitOp {
    Set(u32),
    Clear(u32),
    CountRange(u32, u32),
    AnyRange(u32, u32),
}

fn bit_ops(len: u32) -> impl Strategy<Value = Vec<BitOp>> {
    let op = prop_oneof![
        (0..len).prop_map(BitOp::Set),
        (0..len).prop_map(BitOp::Clear),
        (0..len, 0..len).prop_map(|(a, b)| BitOp::CountRange(a.min(b), a.max(b))),
        (0..len, 0..len).prop_map(|(a, b)| BitOp::AnyRange(a.min(b), a.max(b))),
    ];
    prop::collection::vec(op, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Model-based bitmap check against a HashSet.
    #[test]
    fn bitmap_matches_set_model(len in 1u32..400, ops in bit_ops(400)) {
        let mut bm = Bitmap::new(len);
        let mut model: HashSet<u32> = HashSet::new();
        for op in ops {
            match op {
                BitOp::Set(i) if i < len => {
                    prop_assert_eq!(bm.set(i), model.insert(i));
                }
                BitOp::Clear(i) if i < len => {
                    prop_assert_eq!(bm.clear(i), model.remove(&i));
                }
                BitOp::CountRange(lo, hi) if hi <= len => {
                    let want = model.iter().filter(|&&x| (lo..hi).contains(&x)).count();
                    prop_assert_eq!(bm.count_range(lo, hi), want as u64);
                }
                BitOp::AnyRange(lo, hi) if hi <= len => {
                    let want = model.iter().any(|&x| (lo..hi).contains(&x));
                    prop_assert_eq!(bm.any_in_range(lo, hi), want);
                }
                _ => {}
            }
            prop_assert_eq!(bm.count(), model.len() as u64);
        }
        let mut got: Vec<u32> = bm.iter_set().collect();
        let mut want: Vec<u32> = model.into_iter().collect();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// or_assign equals set union.
    #[test]
    fn bitmap_union(len in 1u32..300, xs in prop::collection::vec(0u32..300, 0..60), ys in prop::collection::vec(0u32..300, 0..60)) {
        let mut a = Bitmap::new(len);
        let mut b = Bitmap::new(len);
        let mut model = HashSet::new();
        for x in xs { if x < len { a.set(x); model.insert(x); } }
        for y in ys { if y < len { b.set(y); model.insert(y); } }
        a.or_assign(&b);
        prop_assert_eq!(a.count(), model.len() as u64);
        for v in model { prop_assert!(a.get(v)); }
    }
}

//! Frontier sets: which vertices are active in an iteration.
//!
//! The frontier drives the paper's dynamic frontier management (Section
//! 5.2): shards whose interval holds no active vertex (and receives no
//! activation) are neither copied to the device nor launched. The dense
//! bitmap form keeps per-interval counting O(words) and activation
//! (one-hop neighborhood marking) branch-light.

/// A fixed-size dense bitmap over vertex ids with an exact popcount cache.
///
/// ```
/// use gr_graph::Bitmap;
///
/// let mut frontier = Bitmap::new(1000);
/// frontier.set(3);
/// frontier.set(997);
/// assert_eq!(frontier.count(), 2);
/// assert!(frontier.any_in_range(0, 10));
/// assert_eq!(frontier.count_range(500, 1000), 1);
/// assert_eq!(frontier.iter_set().collect::<Vec<_>>(), vec![3, 997]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: u32,
    count: u64,
}

impl Bitmap {
    /// All-zeros bitmap over `len` bits.
    pub fn new(len: u32) -> Self {
        Bitmap {
            words: vec![0; (len as usize).div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// All-ones bitmap over `len` bits.
    pub fn full(len: u32) -> Self {
        let mut b = Bitmap::new(len);
        for w in &mut b.words {
            *w = !0;
        }
        // Clear the tail past `len`.
        let tail = (len % 64) as u64;
        if tail != 0 {
            if let Some(last) = b.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        b.count = len as u64;
        b
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`; returns whether it was newly set.
    ///
    /// The counter update branches instead of adding `u64::from(newly)`:
    /// rustc 1.95.0 miscompiles the bool-to-int add in release builds when
    /// the returned flag also feeds a caller-side branch (the increment is
    /// dropped entirely). See `frontier::tests::count_survives_release_opt`.
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let newly = *w & mask == 0;
        *w |= mask;
        if newly {
            self.count += 1;
        }
        newly
    }

    /// Clear bit `i`; returns whether it was previously set.
    #[inline]
    pub fn clear(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let was = *w & mask != 0;
        *w &= !mask;
        if was {
            self.count -= 1;
        }
        was
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits (O(1)).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The backing 64-bit words, low bit = low vertex id (serialization).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstruct a bitmap from serialized words. Returns `None` when the
    /// word count does not match `len` or a tail bit past `len` is set —
    /// both indicate corrupted input, never a valid bitmap.
    pub fn from_words(len: u32, words: Vec<u64>) -> Option<Self> {
        if words.len() != (len as usize).div_ceil(64) {
            return None;
        }
        let tail = (len % 64) as u64;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return None;
                }
            }
        }
        let count = words.iter().map(|w| w.count_ones() as u64).sum();
        Some(Bitmap { words, len, count })
    }

    /// Clear all bits.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Bitwise OR-assign from another bitmap of the same length.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let mut count = 0u64;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            count += a.count_ones() as u64;
        }
        self.count = count;
    }

    /// Count set bits within `[lo, hi)`.
    pub fn count_range(&self, lo: u32, hi: u32) -> u64 {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo == hi {
            return 0;
        }
        let (wl, bl) = ((lo / 64) as usize, lo % 64);
        let (wh, bh) = ((hi / 64) as usize, hi % 64);
        let mask_lo = !0u64 << bl;
        if wl == wh {
            let mask_hi = (1u64 << bh) - 1;
            return (self.words[wl] & mask_lo & mask_hi).count_ones() as u64;
        }
        let mut c = (self.words[wl] & mask_lo).count_ones() as u64;
        for w in &self.words[wl + 1..wh] {
            c += w.count_ones() as u64;
        }
        // The final word is partial only when `hi` is not word-aligned.
        if bh != 0 {
            c += (self.words[wh] & ((1u64 << bh) - 1)).count_ones() as u64;
        }
        c
    }

    /// Whether any bit in `[lo, hi)` is set (early-exit).
    pub fn any_in_range(&self, lo: u32, hi: u32) -> bool {
        debug_assert!(lo <= hi && hi <= self.len);
        if lo == hi {
            return false;
        }
        let (wl, bl) = ((lo / 64) as usize, lo % 64);
        let (wh, bh) = ((hi / 64) as usize, hi % 64);
        let mask_lo = !0u64 << bl;
        if wl == wh {
            return self.words[wl] & mask_lo & ((1u64 << bh) - 1) != 0;
        }
        if self.words[wl] & mask_lo != 0 {
            return true;
        }
        if self.words[wl + 1..wh].iter().any(|&w| w != 0) {
            return true;
        }
        bh != 0 && self.words[wh] & ((1u64 << bh) - 1) != 0
    }

    /// Iterate over set bit indices in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + b)
            })
        })
    }

    /// Index of the first set bit at or after `i`, skipping zero words
    /// (O(words) worst case, O(1) on dense prefixes).
    pub fn next_set_from(&self, i: u32) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        let mut wi = (i / 64) as usize;
        let mut w = self.words[wi] & (!0u64 << (i % 64));
        loop {
            if w != 0 {
                let b = wi as u32 * 64 + w.trailing_zeros();
                // Bits past `len` only exist transiently in never-written
                // words; `full`/`set` keep the tail clean, so b < len here.
                debug_assert!(b < self.len);
                return Some(b);
            }
            wi += 1;
            if wi == self.words.len() {
                return None;
            }
            w = self.words[wi];
        }
    }

    /// Iterate set bits within `[lo, hi)` in ascending order, skipping
    /// all-zero words — the sparse-mode kernel walk: cost is
    /// O(words in range + set bits), independent of the interval's size
    /// when it is mostly empty.
    pub fn iter_set_range(&self, lo: u32, hi: u32) -> impl Iterator<Item = u32> + '_ {
        debug_assert!(lo <= hi && hi <= self.len);
        let wl = (lo / 64) as usize;
        // One-past-the-last word the range touches (== wl for empty ranges).
        let wh = if lo < hi {
            (hi as usize).div_ceil(64)
        } else {
            wl
        };
        let mut wi = wl;
        let mut cur = if lo < hi {
            self.words[wl] & (!0u64 << (lo % 64))
        } else {
            0
        };
        std::iter::from_fn(move || loop {
            if cur != 0 {
                let b = wi as u32 * 64 + cur.trailing_zeros();
                if b >= hi {
                    return None;
                }
                cur &= cur - 1;
                return Some(b);
            }
            wi += 1;
            if wi >= wh {
                return None;
            }
            cur = self.words[wi];
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_count() {
        let mut b = Bitmap::new(130);
        assert!(b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(64)); // already set
        assert_eq!(b.count(), 3);
        assert!(b.get(129) && b.get(0) && b.get(64));
        assert!(!b.get(1));
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn full_has_exact_count_and_clean_tail() {
        let b = Bitmap::full(70);
        assert_eq!(b.count(), 70);
        assert_eq!(b.iter_set().count(), 70);
        assert_eq!(b.iter_set().last(), Some(69));
        let b64 = Bitmap::full(64);
        assert_eq!(b64.count(), 64);
    }

    #[test]
    fn count_range_cases() {
        let mut b = Bitmap::new(200);
        for i in [0u32, 5, 63, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        assert_eq!(b.count_range(0, 200), 8);
        assert_eq!(b.count_range(0, 64), 3);
        assert_eq!(b.count_range(64, 128), 3);
        assert_eq!(b.count_range(5, 6), 1);
        assert_eq!(b.count_range(6, 63), 0);
        assert_eq!(b.count_range(65, 65), 0);
        assert_eq!(b.count_range(128, 200), 2);
        assert_eq!(b.count_range(1, 199), 6);
    }

    #[test]
    fn any_in_range_matches_count_range() {
        let mut b = Bitmap::new(300);
        for i in [17u32, 64, 255] {
            b.set(i);
        }
        for lo in (0..300).step_by(13) {
            for hi in (lo..300).step_by(29) {
                assert_eq!(
                    b.any_in_range(lo, hi),
                    b.count_range(lo, hi) > 0,
                    "range {lo}..{hi}"
                );
            }
        }
    }

    #[test]
    fn or_assign_unions() {
        let mut a = Bitmap::new(100);
        let mut b = Bitmap::new(100);
        a.set(1);
        a.set(50);
        b.set(50);
        b.set(99);
        a.or_assign(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![1, 50, 99]);
    }

    #[test]
    fn iter_set_ascending() {
        let mut b = Bitmap::new(500);
        let bits = [3u32, 64, 65, 129, 400, 499];
        for &i in &bits {
            b.set(i);
        }
        assert_eq!(b.iter_set().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn clear_all_resets() {
        let mut b = Bitmap::full(77);
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter_set().count(), 0);
    }

    /// Regression guard for the rustc 1.95.0 release-mode miscompile of
    /// `count += u64::from(flag)` when `flag` also reaches a branch: keep
    /// the exact trigger shape (`assert!(set(..))`).
    #[test]
    fn count_survives_release_opt() {
        let mut b = Bitmap::new(130);
        assert!(b.set(0));
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(!b.set(64));
        assert_eq!(b.count(), 3);
        assert!(b.clear(129));
        assert!(!b.clear(129));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn next_set_from_skips_zero_words() {
        let mut b = Bitmap::new(1000);
        for i in [3u32, 64, 700, 999] {
            b.set(i);
        }
        assert_eq!(b.next_set_from(0), Some(3));
        assert_eq!(b.next_set_from(3), Some(3));
        assert_eq!(b.next_set_from(4), Some(64));
        assert_eq!(b.next_set_from(65), Some(700));
        assert_eq!(b.next_set_from(700), Some(700));
        assert_eq!(b.next_set_from(701), Some(999));
        assert_eq!(b.next_set_from(1000), None);
        let empty = Bitmap::new(256);
        assert_eq!(empty.next_set_from(0), None);
    }

    #[test]
    fn iter_set_range_matches_filtered_iter_set() {
        let mut b = Bitmap::new(500);
        for i in [0u32, 1, 63, 64, 65, 127, 200, 255, 256, 440, 499] {
            b.set(i);
        }
        for lo in (0..=500).step_by(37) {
            for hi in (lo..=500).step_by(41) {
                let got: Vec<u32> = b.iter_set_range(lo, hi).collect();
                let want: Vec<u32> = b.iter_set().filter(|&v| v >= lo && v < hi).collect();
                assert_eq!(got, want, "range {lo}..{hi}");
            }
        }
        // Degenerate and word-aligned edges.
        assert_eq!(b.iter_set_range(64, 64).count(), 0);
        assert_eq!(
            b.iter_set_range(64, 128).collect::<Vec<_>>(),
            vec![64, 65, 127]
        );
        assert_eq!(b.iter_set_range(0, 500).count() as u64, b.count());
    }

    #[test]
    fn iter_set_range_on_full_bitmap() {
        let b = Bitmap::full(130);
        assert_eq!(
            b.iter_set_range(100, 130).collect::<Vec<_>>(),
            (100..130).collect::<Vec<_>>()
        );
    }

    #[test]
    fn words_round_trip_through_from_words() {
        let mut b = Bitmap::new(130);
        for i in [0u32, 64, 129] {
            b.set(i);
        }
        let rebuilt = Bitmap::from_words(130, b.words().to_vec()).unwrap();
        assert_eq!(rebuilt, b);
        assert_eq!(rebuilt.count(), 3);
        // Wrong word count and dirty tail bits are both rejected.
        assert!(Bitmap::from_words(130, vec![0; 2]).is_none());
        assert!(Bitmap::from_words(130, vec![0, 0, 1 << 2]).is_none());
        // Word-aligned lengths have no tail to validate.
        assert!(Bitmap::from_words(128, vec![!0, !0]).is_some());
        assert!(Bitmap::from_words(0, vec![]).is_some());
    }

    #[test]
    fn zero_length_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter_set().count(), 0);
    }
}

//! # gr-graph — graph substrate for the GraphReduce reproduction
//!
//! Containers, generators, and partitioning shared by the GraphReduce core
//! and every baseline engine:
//!
//! * [`edgelist`] — raw directed edge lists with text IO;
//! * [`csr`] — the dual CSC/CSR layout with one canonical edge numbering
//!   (the Graph Layout Engine of Section 4.2);
//! * [`gen`] — deterministic synthetic generators (R-MAT, lattices, 3-D
//!   stencils, small-world, preferential attachment);
//! * [`datasets`] — class-matched, scale-parameterized stand-ins for the
//!   paper's Table 1 datasets;
//! * [`partition`] — load-balanced vertex-interval partitioning with
//!   pluggable logic;
//! * [`shard`] — the Figure 7 shard descriptors (contiguous CSC/CSR
//!   ranges per interval);
//! * [`frontier`] — dense bitmaps with ranged popcounts for frontier
//!   tracking.

pub mod compress;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod frontier;
pub mod gen;
pub mod partition;
pub mod shard;
pub mod stats;

pub use compress::{CompressedTopology, CompressionCodec, TopoView};
pub use csr::{Adjacency, GraphLayout};
pub use datasets::{dataset_bytes, in_memory_bytes, Dataset};
pub use edgelist::{EdgeList, VertexId};
pub use frontier::Bitmap;
pub use partition::{
    partition_even_edges, validate_partition, EvenEdgePartition, EvenVertexPartition, Interval,
    PartitionLogic,
};
pub use shard::{build_shards, partition_into_shards, split_shard, Shard};
pub use stats::GraphStats;

//! Deterministic synthetic graph generators.
//!
//! Each generator is seeded and hits an exact vertex/edge count, so the
//! dataset stand-ins of [`crate::datasets`] can match Table 1's |V| and |E|
//! at any scale. Structural classes:
//!
//! * [`rmat`] — Kronecker/R-MAT power-law graphs (kron_g500, social and web
//!   crawls);
//! * [`uniform`] — Erdős–Rényi-style random digraphs;
//! * [`grid2d_with_edges`] — planar 4-neighbor lattices (road networks,
//!   redistricting meshes): huge diameter, tiny degree;
//! * [`stencil3d`] — 3-D volume meshes with near-constant degree (PDE
//!   matrices like nlpkkt160, cage15): regular, high locality;
//! * [`smallworld`] — Watts-Strogatz ring lattices with rewiring
//!   (collaboration networks);
//! * [`preferential`] — Barabási–Albert preferential attachment.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::edgelist::EdgeList;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// R-MAT generator with the Graph500 parameters `(a, b, c, d)`.
/// `scale` is log2 of the vertex count; exactly `num_edges` directed edges
/// are produced (duplicates and self-loops possible, as in the raw
/// kron_g500 inputs).
pub fn rmat(scale: u32, num_edges: u64, a: f64, b: f64, c: f64, seed: u64) -> EdgeList {
    assert!(scale <= 31, "scale too large for u32 vertex ids");
    let d = 1.0 - a - b - c;
    assert!(d >= -1e-9, "rmat probabilities exceed 1");
    let n = 1u32 << scale;
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let (mut lo_s, mut lo_d) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let x: f64 = r.random();
            let (sbit, dbit) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            lo_s |= sbit << bit;
            lo_d |= dbit << bit;
        }
        edges.push((lo_s, lo_d));
    }
    EdgeList::from_edges(n, edges)
}

/// Graph500 reference R-MAT parameters.
pub fn rmat_g500(scale: u32, num_edges: u64, seed: u64) -> EdgeList {
    rmat(scale, num_edges, 0.57, 0.19, 0.19, seed)
}

/// Uniform random digraph with exactly `num_edges` edges, no self-loops.
pub fn uniform(num_vertices: u32, num_edges: u64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut r = rng(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let s = r.random_range(0..num_vertices);
        let mut d = r.random_range(0..num_vertices - 1);
        if d >= s {
            d += 1;
        }
        edges.push((s, d));
    }
    EdgeList::from_edges(num_vertices, edges)
}

/// Select exactly `take` items from `0..total` uniformly without
/// replacement (partial Fisher-Yates), deterministic in `r`.
fn sample_indices(total: usize, take: usize, r: &mut impl RngExt) -> Vec<u32> {
    assert!(take <= total);
    let mut idx: Vec<u32> = (0..total as u32).collect();
    for i in 0..take {
        let j = r.random_range(i..total);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

/// Planar road-network lattice with exactly `num_edges` directed edges.
///
/// Road networks are *connected* and have huge diameter; a random sample of
/// lattice edges fragments below the percolation threshold and loses both
/// properties. Instead, the edge budget first buys a **connected subgrid**:
/// a serpentine bidirectional spanning path over `v_used ≈ num_edges/4`
/// grid vertices (guaranteeing one large component with diameter
/// `Θ(√v_used)` once filled), then the remaining budget draws from the
/// other 4-neighbor lattice edges. Vertices beyond `v_used` stay isolated
/// (a sampled road sub-network with the same |V|, |E| as the target).
pub fn grid2d_with_edges(num_vertices: u32, num_edges: u64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices");
    let v_used = (num_edges / 4).clamp(2, num_vertices as u64) as u32;
    let w = (v_used as f64).sqrt().ceil() as u32;
    let h = v_used.div_ceil(w.max(1)).max(1);
    let id = |x: u32, y: u32| y * w + x;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(num_edges as usize);

    // Serpentine bidirectional spanning path: connects all v_used vertices.
    let order: Vec<u32> = (0..h)
        .flat_map(|y| {
            let xs: Box<dyn Iterator<Item = u32>> = if y % 2 == 0 {
                Box::new(0..w)
            } else {
                Box::new((0..w).rev())
            };
            xs.map(move |x| id(x, y))
        })
        .filter(|&u| u < v_used)
        .collect();
    for pair in order.windows(2) {
        if (edges.len() as u64) + 2 > num_edges {
            break;
        }
        edges.push((pair[0], pair[1]));
        edges.push((pair[1], pair[0]));
    }

    // Remaining lattice candidates (not already on the serpentine path).
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let u = id(x, y);
            if u >= v_used {
                continue;
            }
            // Vertical links are never on the serpentine path except at row
            // turns; accept the tiny duplication chance there (road graphs
            // tolerate parallel edges; engines do too).
            if y + 1 < h && id(x, y + 1) < v_used {
                candidates.push((u, id(x, y + 1)));
                candidates.push((id(x, y + 1), u));
            }
            // Horizontal links on odd/even row boundaries already exist; add
            // the distance-2 "avenue" links for degree variety.
            if x + 2 < w && id(x + 2, y) < v_used {
                candidates.push((u, id(x + 2, y)));
            }
        }
    }
    let mut r = rng(seed);
    let need = (num_edges as usize).saturating_sub(edges.len());
    let take = need.min(candidates.len());
    for i in sample_indices(candidates.len(), take, &mut r) {
        edges.push(candidates[i as usize]);
    }
    // Exact budget: any remainder becomes short local hops inside the grid.
    while (edges.len() as u64) < num_edges {
        let u = r.random_range(0..v_used);
        let hop = r.random_range(1..=w.min(v_used - 1).max(1));
        edges.push((u, (u + hop) % v_used));
    }
    edges.truncate(num_edges as usize);
    EdgeList::from_edges(num_vertices, edges)
}

/// 3-D volume mesh: vertices on a cubic lattice, each connected to its
/// nearest lattice neighbors (offsets ordered by distance) until the global
/// edge budget is met. High locality and near-constant degree, like the
/// PDE-derived matrices (nlpkkt160: 27-point stencil ⇒ ~26 edges/vertex).
pub fn stencil3d(num_vertices: u32, num_edges: u64, seed: u64) -> EdgeList {
    let s = (num_vertices as f64).cbrt().ceil() as u32;
    let s = s.max(2);
    let id = |x: u32, y: u32, z: u32| (z * s + y) * s + x;
    // Neighbor offsets within a radius-2 cube, sorted by squared distance,
    // excluding the origin. 124 offsets: enough for degree up to ~124.
    let mut offsets: Vec<(i32, i32, i32)> = Vec::new();
    for dz in -2i32..=2 {
        for dy in -2i32..=2 {
            for dx in -2i32..=2 {
                if (dx, dy, dz) != (0, 0, 0) {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    offsets.sort_by_key(|&(x, y, z)| (x * x + y * y + z * z, z, y, x));

    let degree = (num_edges / num_vertices.max(1) as u64) as usize;
    let degree = degree.min(offsets.len());
    let mut edges = Vec::with_capacity(num_edges as usize);
    'outer: for z in 0..s {
        for y in 0..s {
            for x in 0..s {
                let u = id(x, y, z);
                if u >= num_vertices {
                    continue;
                }
                for &(dx, dy, dz) in offsets.iter().take(degree) {
                    let (nx, ny, nz) = (x as i32 + dx, y as i32 + dy, z as i32 + dz);
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (nx as u32, ny as u32, nz as u32);
                    if nx >= s || ny >= s || nz >= s {
                        continue;
                    }
                    let v = id(nx, ny, nz);
                    if v < num_vertices {
                        edges.push((u, v));
                        if edges.len() as u64 == num_edges {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    // Top up: boundary vertices have truncated stencils, so give the
    // missing edges back to *them* (keeping near-constant degree), as
    // local-ish random connections.
    let mut r = rng(seed);
    if (edges.len() as u64) < num_edges {
        let mut emitted = vec![0u32; num_vertices as usize];
        for &(u, _) in &edges {
            emitted[u as usize] += 1;
        }
        'fill: loop {
            let mut progressed = false;
            for u in 0..num_vertices {
                if (emitted[u as usize] as usize) < degree.max(1) {
                    let jump = r.random_range(1..=(2 * s * s).min(num_vertices - 1).max(1));
                    edges.push((u, (u + jump) % num_vertices));
                    emitted[u as usize] += 1;
                    progressed = true;
                    if edges.len() as u64 == num_edges {
                        break 'fill;
                    }
                }
            }
            if !progressed {
                // Everyone is at quota but the budget remains (rounding):
                // spread the remainder round-robin.
                for u in 0.. {
                    let u = u % num_vertices;
                    let jump = r.random_range(1..=(2 * s * s).min(num_vertices - 1).max(1));
                    edges.push((u, (u + jump) % num_vertices));
                    if edges.len() as u64 == num_edges {
                        break 'fill;
                    }
                }
            }
        }
    }
    EdgeList::from_edges(num_vertices, edges)
}

/// Watts-Strogatz-style small world: ring lattice edges (distance 1, 2, ...)
/// in both directions until `num_edges`, each rewired to a random endpoint
/// with probability `rewire_p`.
pub fn smallworld(num_vertices: u32, num_edges: u64, rewire_p: f64, seed: u64) -> EdgeList {
    assert!(num_vertices >= 3, "ring needs at least 3 vertices");
    let mut r = rng(seed);
    let n = num_vertices;
    let mut edges = Vec::with_capacity(num_edges as usize);
    let mut dist = 1u32;
    'outer: loop {
        for u in 0..n {
            for &v in &[(u + dist) % n, (u + n - dist % n) % n] {
                if edges.len() as u64 == num_edges {
                    break 'outer;
                }
                let v = if r.random::<f64>() < rewire_p {
                    let mut w = r.random_range(0..n - 1);
                    if w >= u {
                        w += 1;
                    }
                    w
                } else {
                    v
                };
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        dist += 1;
        if dist >= n {
            // Dense request: wrap around and add parallel ring edges (the
            // engines tolerate multigraphs) so |E| is always exact.
            dist = 1;
        }
    }
    EdgeList::from_edges(n, edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportional to degree; both edge
/// directions are emitted. Produces `~2*m*num_vertices` edges.
pub fn preferential(num_vertices: u32, m: u32, seed: u64) -> EdgeList {
    assert!(m >= 1 && num_vertices > m, "need num_vertices > m >= 1");
    let mut r = SmallRng::seed_from_u64(seed);
    // Repeated-endpoints list: picking uniformly from it is proportional to
    // degree (the standard O(E) BA construction).
    let mut endpoints: Vec<u32> = (0..=m).collect();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(2 * m as usize * num_vertices as usize);
    // Seed clique over vertices 0..=m.
    for u in 0..=m {
        for v in 0..u {
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    for u in (m + 1)..num_vertices {
        for _ in 0..m {
            let v = endpoints[r.random_range(0..endpoints.len())];
            edges.push((u, v));
            edges.push((v, u));
            endpoints.push(v);
        }
        endpoints.push(u);
    }
    EdgeList::from_edges(num_vertices, edges)
}

/// Attach deterministic pseudo-random weights in `[1.0, max_w)` to an edge
/// list (for SSSP inputs).
pub fn with_random_weights(el: EdgeList, max_w: f32, seed: u64) -> EdgeList {
    let mut r = rng(seed);
    let w = (0..el.edges.len())
        .map(|_| 1.0 + r.random::<f32>() * (max_w - 1.0))
        .collect();
    el.with_weights(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_counts_and_determinism() {
        let g1 = rmat_g500(10, 5000, 42);
        let g2 = rmat_g500(10, 5000, 42);
        assert_eq!(g1.num_vertices, 1024);
        assert_eq!(g1.num_edges(), 5000);
        assert_eq!(g1, g2);
        let g3 = rmat_g500(10, 5000, 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat_g500(12, 40_000, 7);
        let mut deg = g.out_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        // Power-law-ish: the top 1% of vertices hold far more than 1% of edges.
        let top: u64 = deg.iter().take(41).map(|&d| d as u64).sum();
        assert!(top > 40_000 / 10, "top-1% edges: {top}");
    }

    #[test]
    fn uniform_counts() {
        let g = uniform(100, 1000, 1);
        assert_eq!(g.num_edges(), 1000);
        assert!(g.edges.iter().all(|&(s, d)| s != d));
    }

    /// Vertices reachable from `src` following directed edges.
    fn reachable(g: &EdgeList, src: u32) -> usize {
        let mut adj = vec![Vec::new(); g.num_vertices as usize];
        for &(s, d) in &g.edges {
            adj[s as usize].push(d);
        }
        let mut seen = vec![false; g.num_vertices as usize];
        let mut stack = vec![src];
        seen[src as usize] = true;
        let mut n = 0;
        while let Some(v) = stack.pop() {
            n += 1;
            for &d in &adj[v as usize] {
                if !seen[d as usize] {
                    seen[d as usize] = true;
                    stack.push(d);
                }
            }
        }
        n
    }

    #[test]
    fn grid2d_exact_edges_and_connected_core() {
        let g = grid2d_with_edges(1000, 1500, 3);
        assert_eq!(g.num_vertices, 1000);
        assert_eq!(g.num_edges(), 1500);
        // The edge budget buys a connected subgrid of ~e/4 vertices.
        let core = 1500 / 4;
        assert!(
            reachable(&g, 0) >= core,
            "road core must be connected: {} < {core}",
            reachable(&g, 0)
        );
    }

    #[test]
    fn grid2d_is_road_like_high_diameter() {
        // BFS depth from corner should scale like the grid side, not log n.
        let g = grid2d_with_edges(10_000, 40_000, 4);
        let mut adj = vec![Vec::new(); g.num_vertices as usize];
        for &(s, d) in &g.edges {
            adj[s as usize].push(d);
        }
        let mut depth = vec![u32::MAX; g.num_vertices as usize];
        depth[0] = 0;
        let mut q = std::collections::VecDeque::from([0u32]);
        let mut max_depth = 0;
        while let Some(v) = q.pop_front() {
            for &d in &adj[v as usize] {
                if depth[d as usize] == u32::MAX {
                    depth[d as usize] = depth[v as usize] + 1;
                    max_depth = max_depth.max(depth[d as usize]);
                    q.push_back(d);
                }
            }
        }
        assert!(max_depth > 30, "road diameter too small: {max_depth}");
    }

    #[test]
    fn grid2d_tops_up_when_oversubscribed() {
        // Tiny lattice, many edges: must still hit the exact count.
        let g = grid2d_with_edges(16, 200, 5);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn stencil3d_regular_degree() {
        let g = stencil3d(4096, 4096 * 20, 9);
        assert_eq!(g.num_edges(), 4096 * 20);
        let deg = g.out_degrees();
        // Interior vertices all get exactly the stencil degree.
        let modal = deg.iter().filter(|&&d| d == 20).count();
        assert!(modal > 2000, "modal-degree vertices: {modal}");
    }

    #[test]
    fn smallworld_counts() {
        let g = smallworld(500, 2000, 0.1, 11);
        assert_eq!(g.num_edges(), 2000);
        assert!(g.edges.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn preferential_attachment_grows_hubs() {
        let g = preferential(2000, 3, 13);
        let mut deg = g.out_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            deg[0] > 3 * deg[1000],
            "hub degree {} vs median {}",
            deg[0],
            deg[1000]
        );
    }

    #[test]
    fn random_weights_in_range() {
        let g = with_random_weights(uniform(50, 500, 2), 64.0, 3);
        let w = g.weights.unwrap();
        assert_eq!(w.len(), 500);
        assert!(w.iter().all(|&x| (1.0..64.0).contains(&x)));
    }

    #[test]
    fn sample_indices_unique_and_exact() {
        let mut r = rng(0);
        let s = sample_indices(100, 40, &mut r);
        assert_eq!(s.len(), 40);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 40);
        assert!(t.iter().all(|&i| i < 100));
    }
}

//! Stand-ins for the paper's datasets (Table 1, plus delaunay_n13 from
//! Table 2).
//!
//! The originals are public downloads the paper pulls from DIMACS10, LAW,
//! SuiteSparse and SNAP; this reproduction regenerates *class-matched*
//! synthetic graphs instead, at a configurable scale divisor, so experiments
//! run in seconds on a laptop while preserving:
//!
//! * |V| and |E| ratios (degree, density) of each dataset;
//! * its structural class (power-law crawl, social network, planar road
//!   network, 3-D PDE mesh, small-world collaboration graph) — which is
//!   what drives the frontier dynamics of Figures 3, 16 and 17;
//! * its side of the in-memory / out-of-memory boundary, because
//!   `gr_sim::DeviceConfig::k20c_scaled` shrinks device memory by the same
//!   divisor.
//!
//! The in-memory footprint model was fit to Table 1: `bytes = 52.5·|E| +
//! 60·|V|` reproduces every reported size within ~7% (except belgium_osm,
//! whose printed "5.4MB" is inconsistent with every other row of the
//! paper's own table — 1.5 M edges cannot occupy 3.5 bytes each when the
//! same table charges kron_g500 53 bytes per edge; we reproduce the
//! formula's 166 MB instead and note the anomaly).

use crate::edgelist::EdgeList;
use crate::gen;

/// The graphs used in the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dataset {
    /// DIMACS10 ak2010: Alaska redistricting mesh (planar).
    Ak2010,
    /// DIMACS10 coAuthorsDBLP: collaboration small-world network.
    CoAuthorsDblp,
    /// kron_g500-logn20: Graph500 Kronecker, scale 20.
    KronLogn20,
    /// webbase-1M: web crawl sample.
    Webbase1M,
    /// DIMACS10 belgium_osm: road network (planar, huge diameter).
    BelgiumOsm,
    /// delaunay_n13: Delaunay triangulation (Table 2 only).
    DelaunayN13,
    /// kron_g500-logn21: Graph500 Kronecker, scale 21 (out-of-memory).
    KronLogn21,
    /// nlpkkt160: 3-D PDE-constrained optimization matrix (out-of-memory).
    Nlpkkt160,
    /// uk-2002: .uk web crawl (out-of-memory).
    Uk2002,
    /// orkut: social friendship network (out-of-memory).
    Orkut,
    /// cage15: DNA electrophoresis matrix, 3-D mesh-like (out-of-memory).
    Cage15,
}

impl Dataset {
    /// The five small graphs compared against in-GPU-memory frameworks
    /// (Tables 1 top and 4).
    pub const IN_MEMORY: [Dataset; 5] = [
        Dataset::Ak2010,
        Dataset::CoAuthorsDblp,
        Dataset::KronLogn20,
        Dataset::Webbase1M,
        Dataset::BelgiumOsm,
    ];

    /// The five large graphs that exceed K20c memory (Tables 1 bottom and 3).
    pub const OUT_OF_MEMORY: [Dataset; 5] = [
        Dataset::KronLogn21,
        Dataset::Nlpkkt160,
        Dataset::Uk2002,
        Dataset::Orkut,
        Dataset::Cage15,
    ];

    /// The six graphs of the Table 2 motivation experiment.
    pub const TABLE2: [Dataset; 6] = [
        Dataset::Ak2010,
        Dataset::BelgiumOsm,
        Dataset::CoAuthorsDblp,
        Dataset::DelaunayN13,
        Dataset::KronLogn20,
        Dataset::Webbase1M,
    ];

    /// Name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Ak2010 => "ak2010",
            Dataset::CoAuthorsDblp => "coAuthorsDBLP",
            Dataset::KronLogn20 => "kron_g500-logn20",
            Dataset::Webbase1M => "webbase-1M",
            Dataset::BelgiumOsm => "belgium_osm",
            Dataset::DelaunayN13 => "delaunay_n13",
            Dataset::KronLogn21 => "kron_g500-logn21",
            Dataset::Nlpkkt160 => "nlpkkt160",
            Dataset::Uk2002 => "uk-2002",
            Dataset::Orkut => "orkut",
            Dataset::Cage15 => "cage15",
        }
    }

    /// Vertex count of the original dataset (Table 1).
    pub fn paper_vertices(self) -> u64 {
        match self {
            Dataset::Ak2010 => 45_292,
            Dataset::CoAuthorsDblp => 299_067,
            Dataset::KronLogn20 => 1_048_576,
            Dataset::Webbase1M => 1_000_005,
            Dataset::BelgiumOsm => 1_441_295,
            Dataset::DelaunayN13 => 8_192,
            Dataset::KronLogn21 => 2_097_152,
            Dataset::Nlpkkt160 => 8_345_600,
            Dataset::Uk2002 => 18_520_486,
            Dataset::Orkut => 3_072_441,
            Dataset::Cage15 => 5_154_859,
        }
    }

    /// Directed edge count of the original dataset (Table 1).
    pub fn paper_edges(self) -> u64 {
        match self {
            Dataset::Ak2010 => 108_549,
            Dataset::CoAuthorsDblp => 977_676,
            Dataset::KronLogn20 => 44_620_272,
            Dataset::Webbase1M => 3_105_536,
            Dataset::BelgiumOsm => 1_549_970,
            Dataset::DelaunayN13 => 49_094,
            Dataset::KronLogn21 => 91_042_010,
            Dataset::Nlpkkt160 => 221_172_512,
            Dataset::Uk2002 => 298_113_762,
            Dataset::Orkut => 117_185_083,
            Dataset::Cage15 => 99_199_551,
        }
    }

    /// Whether the *original* exceeds the K20c's 4.8 GB (Table 1's split).
    pub fn paper_out_of_memory(self) -> bool {
        matches!(
            self,
            Dataset::KronLogn21
                | Dataset::Nlpkkt160
                | Dataset::Uk2002
                | Dataset::Orkut
                | Dataset::Cage15
        )
    }

    /// Vertex count at scale divisor `scale`.
    pub fn vertices(self, scale: u64) -> u32 {
        (self.paper_vertices() / scale).max(16) as u32
    }

    /// Edge count at scale divisor `scale`.
    pub fn edges(self, scale: u64) -> u64 {
        (self.paper_edges() / scale).max(32)
    }

    /// Generate the class-matched synthetic stand-in at divisor `scale`
    /// (1 = paper size). Deterministic for a given `(dataset, scale)`.
    pub fn generate(self, scale: u64) -> EdgeList {
        let v = self.vertices(scale);
        let e = self.edges(scale);
        let seed = 0x5EED_0000 + self as u64;
        match self {
            // Kronecker graphs: R-MAT at the scale's vertex budget.
            Dataset::KronLogn20 | Dataset::KronLogn21 => {
                let log2v = (v as f64).log2().round() as u32;
                gen::rmat_g500(log2v, e, seed)
            }
            // Web crawls: power-law but less skewed than Graph500, with
            // symmetrization for webbase (it is stored both ways).
            Dataset::Uk2002 | Dataset::Webbase1M => {
                let log2v = (v as f64).log2().ceil() as u32;
                gen::rmat(log2v, e, 0.50, 0.22, 0.22, seed)
            }
            // Social network: skewed and symmetric (undirected friendship).
            Dataset::Orkut => {
                let log2v = (v as f64).log2().ceil() as u32;
                let half = gen::rmat(log2v, e / 2, 0.45, 0.22, 0.22, seed);
                let mut sym = half.symmetrize();
                // symmetrize may drop a few self-loop mirrors; top up exactly.
                let mut k = 0u64;
                while (sym.edges.len() as u64) < e {
                    sym.edges.push((
                        (k % sym.num_vertices as u64) as u32,
                        ((k + 1) % sym.num_vertices as u64) as u32,
                    ));
                    k += 1;
                }
                sym.edges.truncate(e as usize);
                sym
            }
            // Planar meshes / road networks.
            Dataset::Ak2010 | Dataset::BelgiumOsm | Dataset::DelaunayN13 => {
                gen::grid2d_with_edges(v, e, seed)
            }
            // 3-D PDE meshes.
            Dataset::Nlpkkt160 | Dataset::Cage15 => gen::stencil3d(v, e, seed),
            // Collaboration network.
            Dataset::CoAuthorsDblp => gen::smallworld(v, e, 0.15, seed),
        }
    }

    /// Generate with pseudo-random SSSP weights in `[1, 64)`.
    pub fn generate_weighted(self, scale: u64) -> EdgeList {
        gen::with_random_weights(self.generate(scale), 64.0, 0xACE5 + self as u64)
    }
}

/// In-memory footprint model fit to Table 1 (see module docs):
/// `52.5 bytes/edge + 60 bytes/vertex`.
pub fn in_memory_bytes(num_vertices: u64, num_edges: u64) -> u64 {
    num_edges * 105 / 2 + num_vertices * 60
}

/// Footprint of a dataset at a given scale divisor.
pub fn dataset_bytes(ds: Dataset, scale: u64) -> u64 {
    in_memory_bytes(ds.vertices(scale) as u64, ds.edges(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_model_matches_table1() {
        // (dataset, reported size in bytes, tolerance)
        let rows: &[(Dataset, f64, f64)] = &[
            (Dataset::Ak2010, 7.9e6, 0.10),
            (Dataset::CoAuthorsDblp, 69.5e6, 0.05),
            (Dataset::KronLogn20, 2.4e9, 0.05),
            (Dataset::Webbase1M, 211.6e6, 0.08),
            (Dataset::KronLogn21, 4.84e9, 0.05),
            (Dataset::Nlpkkt160, 11.9e9, 0.05),
            (Dataset::Uk2002, 16.4e9, 0.05),
            (Dataset::Orkut, 6.2e9, 0.05),
            (Dataset::Cage15, 5.4e9, 0.07),
        ];
        for &(ds, reported, tol) in rows {
            let model = in_memory_bytes(ds.paper_vertices(), ds.paper_edges()) as f64;
            let err = (model - reported).abs() / reported;
            assert!(
                err < tol,
                "{}: model {model:.3e} vs paper {reported:.3e} (err {err:.3})",
                ds.name()
            );
        }
    }

    #[test]
    fn out_of_memory_split_matches_paper_at_full_scale() {
        let cap = 4_800_000_000u64;
        for ds in Dataset::IN_MEMORY {
            assert!(
                in_memory_bytes(ds.paper_vertices(), ds.paper_edges()) < cap,
                "{} should fit",
                ds.name()
            );
        }
        for ds in Dataset::OUT_OF_MEMORY {
            assert!(
                in_memory_bytes(ds.paper_vertices(), ds.paper_edges()) > cap,
                "{} should not fit",
                ds.name()
            );
        }
    }

    #[test]
    fn out_of_memory_split_preserved_at_scale_64() {
        let scale = 64;
        let cap = 4_800_000_000 / scale;
        for ds in Dataset::IN_MEMORY {
            assert!(dataset_bytes(ds, scale) < cap, "{} should fit", ds.name());
        }
        for ds in Dataset::OUT_OF_MEMORY {
            assert!(dataset_bytes(ds, scale) > cap, "{} too small", ds.name());
        }
    }

    #[test]
    fn generators_hit_exact_counts() {
        for ds in Dataset::IN_MEMORY.into_iter().chain([Dataset::DelaunayN13]) {
            let g = ds.generate(256);
            assert_eq!(g.num_edges() as u64, ds.edges(256), "{}", ds.name());
            assert!(g.num_vertices >= ds.vertices(256), "{}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Orkut.generate(512);
        let b = Dataset::Orkut.generate(512);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_variant_has_weights() {
        let g = Dataset::Ak2010.generate_weighted(64);
        assert_eq!(g.weights.as_ref().unwrap().len(), g.num_edges());
    }

    #[test]
    fn orkut_standin_is_symmetric_mostly() {
        let g = Dataset::Orkut.generate(512);
        use std::collections::HashSet;
        let set: HashSet<(u32, u32)> = g.edges.iter().copied().collect();
        let mirrored = g
            .edges
            .iter()
            .filter(|&&(s, d)| set.contains(&(d, s)))
            .count();
        assert!(mirrored as f64 > 0.9 * g.edges.len() as f64);
    }
}

//! Load-balanced vertex-interval partitioning (Partition Engine, §4.2).
//!
//! The vertex set is divided into disjoint contiguous intervals; each
//! interval's shard holds every edge with a source *or* destination inside
//! the interval. The Shard Creator balances intervals so each shard carries
//! approximately the same number of edges (in-degree + out-degree mass),
//! which balances both transfer sizes and kernel work across streams.

use crate::csr::GraphLayout;
use crate::edgelist::VertexId;

/// A half-open vertex interval `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    pub start: VertexId,
    pub end: VertexId,
}

impl Interval {
    /// Number of vertices in the interval.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `v` falls inside the interval.
    pub fn contains(&self, v: VertexId) -> bool {
        (self.start..self.end).contains(&v)
    }

    /// Split at `mid` into `[start, mid)` and `[mid, end)`. Returns `None`
    /// unless both halves are non-empty (the partition invariant).
    pub fn split_at(&self, mid: VertexId) -> Option<(Interval, Interval)> {
        if mid <= self.start || mid >= self.end {
            return None;
        }
        Some((
            Interval {
                start: self.start,
                end: mid,
            },
            Interval {
                start: mid,
                end: self.end,
            },
        ))
    }

    /// Split at the vertex midpoint. `None` for intervals of fewer than two
    /// vertices — the floor of adaptive shard splitting.
    pub fn split(&self) -> Option<(Interval, Interval)> {
        self.split_at(self.start + self.len() / 2)
    }
}

/// Pluggable partitioning logic (the Partition Logic Table takes these as
/// plug-ins; Section 4.2 notes CuSha-style layouts can be swapped in).
pub trait PartitionLogic {
    /// Split `layout`'s vertex set into at most `max_shards` disjoint
    /// covering intervals.
    fn partition(&self, layout: &GraphLayout, max_shards: usize) -> Vec<Interval>;
    /// Name for traces.
    fn name(&self) -> &'static str;
}

/// The paper's default: balance in+out edge mass per interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvenEdgePartition;

impl PartitionLogic for EvenEdgePartition {
    fn partition(&self, layout: &GraphLayout, max_shards: usize) -> Vec<Interval> {
        partition_even_edges(layout, max_shards)
    }

    fn name(&self) -> &'static str {
        "even-edges"
    }
}

/// Naive alternative: equal vertex counts per interval (ignores degree
/// skew — used by ablation benches to show why edge balancing matters).
#[derive(Clone, Copy, Debug, Default)]
pub struct EvenVertexPartition;

impl PartitionLogic for EvenVertexPartition {
    fn partition(&self, layout: &GraphLayout, max_shards: usize) -> Vec<Interval> {
        let n = layout.num_vertices();
        let max_shards = max_shards.max(1).min(n.max(1) as usize) as u32;
        let base = n / max_shards;
        let extra = n % max_shards;
        let mut out = Vec::with_capacity(max_shards as usize);
        let mut start = 0;
        for i in 0..max_shards {
            let len = base + u32::from(i < extra);
            if len == 0 {
                continue;
            }
            out.push(Interval {
                start,
                end: start + len,
            });
            start += len;
        }
        out
    }

    fn name(&self) -> &'static str {
        "even-vertices"
    }
}

/// Split the vertex set into at most `max_shards` contiguous intervals with
/// approximately equal in+out edge mass each. Returns at least one interval
/// (the whole set) for any non-empty graph; intervals are non-empty,
/// disjoint, ordered, and cover `[0, num_vertices)`.
pub fn partition_even_edges(layout: &GraphLayout, max_shards: usize) -> Vec<Interval> {
    let n = layout.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let shards = max_shards.max(1).min(n as usize) as u64;
    // Work mass of vertex v = in_deg + out_deg + 1 (the +1 keeps progress on
    // isolated vertices and bounds interval length for sparse regions).
    let total: u64 = layout.num_edges() * 2 + n as u64;
    let mut out = Vec::with_capacity(shards as usize);
    let mut acc = 0u64;
    let mut start = 0u32;
    let mut next_boundary = total.div_ceil(shards);
    let mut produced = 0u64;
    for v in 0..n {
        acc += layout.csc.degree(v) + layout.csr.degree(v) + 1;
        let remaining_vertices = n - v - 1;
        let remaining_shards = shards - produced - 1;
        // Close the interval when we pass the boundary, but always leave at
        // least one vertex per remaining shard.
        if (acc >= next_boundary && remaining_shards > 0 && v + 1 > start)
            || remaining_vertices == remaining_shards as u32
        {
            if remaining_shards == 0 {
                break;
            }
            out.push(Interval { start, end: v + 1 });
            produced += 1;
            start = v + 1;
            next_boundary = total * (produced + 1) / shards;
        }
    }
    out.push(Interval { start, end: n });
    out
}

/// Check the partition invariants (used by tests and debug assertions):
/// non-empty, ordered, disjoint, covering.
pub fn validate_partition(intervals: &[Interval], num_vertices: u32) -> Result<(), String> {
    if num_vertices == 0 {
        return if intervals.is_empty() {
            Ok(())
        } else {
            Err("empty graph must have empty partition".into())
        };
    }
    if intervals.is_empty() {
        return Err("no intervals".into());
    }
    if intervals[0].start != 0 {
        return Err(format!("first interval starts at {}", intervals[0].start));
    }
    for w in intervals.windows(2) {
        if w[0].end != w[1].start {
            return Err(format!("gap/overlap between {:?} and {:?}", w[0], w[1]));
        }
    }
    for iv in intervals {
        if iv.is_empty() {
            return Err(format!("empty interval {iv:?}"));
        }
    }
    let last = intervals.last().unwrap();
    if last.end != num_vertices {
        return Err(format!(
            "last interval ends at {} != {num_vertices}",
            last.end
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::gen;

    fn layout(v: u32, e: u64, seed: u64) -> GraphLayout {
        GraphLayout::build(&gen::rmat_g500((v as f64).log2().ceil() as u32, e, seed))
    }

    #[test]
    fn covers_and_validates() {
        let g = layout(1024, 10_000, 1);
        for p in [1, 2, 3, 7, 16, 100] {
            let ivs = partition_even_edges(&g, p);
            validate_partition(&ivs, g.num_vertices()).unwrap();
            assert!(ivs.len() <= p);
        }
    }

    #[test]
    fn single_shard_is_whole_graph() {
        let g = layout(256, 1000, 2);
        let ivs = partition_even_edges(&g, 1);
        assert_eq!(ivs, vec![Interval { start: 0, end: 256 }]);
    }

    #[test]
    fn balanced_within_factor() {
        let g = layout(4096, 100_000, 3);
        let ivs = partition_even_edges(&g, 8);
        assert_eq!(ivs.len(), 8);
        let masses: Vec<u64> = ivs
            .iter()
            .map(|iv| {
                (iv.start..iv.end)
                    .map(|v| g.csc.degree(v) + g.csr.degree(v))
                    .sum()
            })
            .collect();
        let avg = masses.iter().sum::<u64>() as f64 / masses.len() as f64;
        // Power-law graphs can't be perfectly balanced by contiguous
        // intervals, but no shard should be wildly off.
        for m in &masses {
            assert!((*m as f64) < 3.0 * avg, "shard mass {m} vs avg {avg}");
        }
    }

    #[test]
    fn more_shards_than_vertices_clamps() {
        let g = layout(16, 60, 4);
        let ivs = partition_even_edges(&g, 64);
        validate_partition(&ivs, 16).unwrap();
        assert!(ivs.len() <= 16);
    }

    #[test]
    fn empty_graph_has_no_intervals() {
        let g = GraphLayout::build(&EdgeList::new(0));
        assert!(partition_even_edges(&g, 4).is_empty());
        validate_partition(&[], 0).unwrap();
    }

    #[test]
    fn even_vertex_partition_has_equal_lengths() {
        let g = GraphLayout::build(&gen::uniform(100, 500, 5));
        let p = EvenVertexPartition.partition(&g, 7);
        validate_partition(&p, 100).unwrap();
        let lens: Vec<u32> = p.iter().map(|iv| iv.len()).collect();
        assert!(lens.iter().all(|&l| l == 14 || l == 15), "{lens:?}");
    }

    #[test]
    fn split_balances_and_respects_bounds() {
        let iv = Interval { start: 10, end: 20 };
        let (l, r) = iv.split().unwrap();
        assert_eq!(l, Interval { start: 10, end: 15 });
        assert_eq!(r, Interval { start: 15, end: 20 });
        validate_partition(&[l, r], 20).err(); // halves abut
        assert!(iv.split_at(10).is_none(), "empty left half");
        assert!(iv.split_at(20).is_none(), "empty right half");
        assert!(Interval { start: 3, end: 4 }.split().is_none());
        let odd = Interval { start: 0, end: 3 };
        let (l, r) = odd.split().unwrap();
        assert_eq!((l.len(), r.len()), (1, 2));
    }

    #[test]
    fn validate_catches_violations() {
        assert!(validate_partition(&[], 5).is_err());
        assert!(validate_partition(&[Interval { start: 1, end: 5 }], 5).is_err());
        assert!(validate_partition(&[Interval { start: 0, end: 3 }], 5).is_err());
        assert!(validate_partition(
            &[Interval { start: 0, end: 2 }, Interval { start: 3, end: 5 }],
            5
        )
        .is_err());
        assert!(validate_partition(
            &[
                Interval { start: 0, end: 2 },
                Interval { start: 2, end: 2 },
                Interval { start: 2, end: 5 }
            ],
            5
        )
        .is_err());
    }
}

//! Dual CSC/CSR layout with one canonical edge numbering.
//!
//! GraphReduce's Graph Layout Engine (Section 4.2) sorts in-edges by
//! destination and out-edges by source, storing the graph in CSC and CSR
//! simultaneously so no runtime transposition is ever needed. Mutable edge
//! state must be shared between both views: the *canonical* edge id of an
//! edge is its position in CSC order, CSC entry `i` implicitly has id `i`,
//! and every CSR entry carries the canonical id of the edge it mirrors.
//! Engines keep one value array indexed by canonical id; scatter (via CSR)
//! and gather (via CSC) therefore observe the same state.

use crate::edgelist::{EdgeList, VertexId};

/// One adjacency direction in compressed-sparse form.
#[derive(Clone, Debug, PartialEq)]
pub struct Adjacency {
    /// `offsets[v]..offsets[v+1]` indexes this vertex's entries.
    pub offsets: Vec<u64>,
    /// Neighbor endpoint of each entry (source for CSC, destination for CSR).
    pub neighbors: Vec<VertexId>,
    /// Canonical edge id of each entry. For CSC this is the identity and is
    /// left empty to save memory; use [`Adjacency::edge_id`].
    pub edge_ids: Vec<u32>,
}

impl Adjacency {
    /// Entries of vertex `v` as `(neighbor, canonical edge id)` pairs.
    pub fn entries(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.neighbors[i], self.edge_id(i)))
    }

    /// Canonical edge id of entry `i`.
    #[inline]
    pub fn edge_id(&self, i: usize) -> u32 {
        if self.edge_ids.is_empty() {
            i as u32
        } else {
            self.edge_ids[i]
        }
    }

    /// Degree of vertex `v` in this direction.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Entry range of vertex `v`.
    #[inline]
    pub fn range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// Entry range covering the vertex interval `lo..hi` (contiguous).
    #[inline]
    pub fn interval_range(&self, lo: VertexId, hi: VertexId) -> std::ops::Range<usize> {
        self.offsets[lo as usize] as usize..self.offsets[hi as usize] as usize
    }

    fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }
}

/// The full dual layout plus canonical edge weights.
///
/// ```
/// use gr_graph::{EdgeList, GraphLayout};
///
/// let el = EdgeList::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
/// let g = GraphLayout::build(&el);
/// assert_eq!(g.num_edges(), 3);
/// // Out-edges of 0 via CSR; in-edges of 2 via CSC — same canonical ids.
/// let outs: Vec<_> = g.csr.entries(0).collect();
/// assert_eq!(outs.len(), 2);
/// for (dst, eid) in outs {
///     assert_eq!(g.edge_endpoints(eid), (0, dst));
/// }
/// assert_eq!(g.csc.degree(2), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GraphLayout {
    /// In-edges sorted by destination (then source). Canonical edge order.
    pub csc: Adjacency,
    /// Out-edges sorted by source (then destination), carrying canonical ids.
    pub csr: Adjacency,
    /// Per-edge weight in canonical (CSC) order; all 1.0 unless the edge
    /// list carried weights.
    pub weights: Vec<f32>,
}

impl GraphLayout {
    /// Build both layouts from an edge list with two counting sorts.
    pub fn build(el: &EdgeList) -> GraphLayout {
        let n = el.num_vertices as usize;
        let m = el.edges.len();

        // --- CSC: counting sort by destination. Canonical order. ---
        let mut csc_off = vec![0u64; n + 1];
        for &(_, d) in &el.edges {
            csc_off[d as usize + 1] += 1;
        }
        for i in 0..n {
            csc_off[i + 1] += csc_off[i];
        }
        let mut csc_src = vec![0u32; m];
        let mut weights = vec![1.0f32; m];
        let mut cursor = csc_off.clone();
        // Position of input edge k in canonical order.
        let mut canon_of_input = vec![0u32; m];
        for (k, &(s, d)) in el.edges.iter().enumerate() {
            let pos = cursor[d as usize] as usize;
            cursor[d as usize] += 1;
            csc_src[pos] = s;
            canon_of_input[k] = pos as u32;
            if let Some(w) = &el.weights {
                weights[pos] = w[k];
            }
        }
        // Sort each CSC row by source for deterministic, coalesced layout.
        // Rows are typically short; sort index pairs per row.
        // (We must keep canon ids consistent: re-sorting within the row
        // permutes canonical ids, so do it *before* handing out ids — i.e.
        // sort here and rebuild canon_of_input accordingly.)
        {
            let mut perm: Vec<u32> = (0..m as u32).collect();
            for v in 0..n {
                let lo = csc_off[v] as usize;
                let hi = csc_off[v + 1] as usize;
                perm[lo..hi].sort_unstable_by_key(|&p| csc_src[p as usize]);
            }
            // Apply permutation: new canonical position i holds old pos perm[i].
            let mut inv = vec![0u32; m];
            for (i, &p) in perm.iter().enumerate() {
                inv[p as usize] = i as u32;
            }
            let old_src = csc_src.clone();
            let old_w = weights.clone();
            for i in 0..m {
                csc_src[i] = old_src[perm[i] as usize];
                weights[i] = old_w[perm[i] as usize];
            }
            for c in canon_of_input.iter_mut() {
                *c = inv[*c as usize];
            }
        }

        // --- CSR: counting sort by source, carrying canonical ids. ---
        let mut csr_off = vec![0u64; n + 1];
        for &(s, _) in &el.edges {
            csr_off[s as usize + 1] += 1;
        }
        for i in 0..n {
            csr_off[i + 1] += csr_off[i];
        }
        let mut csr_dst = vec![0u32; m];
        let mut csr_eid = vec![0u32; m];
        let mut cursor = csr_off.clone();
        for (k, &(s, d)) in el.edges.iter().enumerate() {
            let pos = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            csr_dst[pos] = d;
            csr_eid[pos] = canon_of_input[k];
        }
        // Sort each CSR row by destination (keeps eids paired).
        for v in 0..n {
            let lo = csr_off[v] as usize;
            let hi = csr_off[v + 1] as usize;
            let row: &mut Vec<(u32, u32)> = &mut csr_dst[lo..hi]
                .iter()
                .copied()
                .zip(csr_eid[lo..hi].iter().copied())
                .collect();
            row.sort_unstable();
            for (i, &(d, e)) in row.iter().enumerate() {
                csr_dst[lo + i] = d;
                csr_eid[lo + i] = e;
            }
        }

        GraphLayout {
            csc: Adjacency {
                offsets: csc_off,
                neighbors: csc_src,
                edge_ids: Vec::new(),
            },
            csr: Adjacency {
                offsets: csr_off,
                neighbors: csr_dst,
                edge_ids: csr_eid,
            },
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.csc.num_vertices()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.csc.neighbors.len() as u64
    }

    /// The endpoints of the canonical edge `eid` as `(src, dst)`.
    /// O(log n) via binary search over CSC offsets (debug/test helper).
    pub fn edge_endpoints(&self, eid: u32) -> (VertexId, VertexId) {
        let src = self.csc.neighbors[eid as usize];
        let dst = match self.csc.offsets.binary_search(&(eid as u64)) {
            Ok(mut i) => {
                // offsets can repeat for empty rows; advance to the row that
                // actually contains eid.
                while self.csc.offsets[i + 1] == eid as u64 {
                    i += 1;
                }
                i as u32
            }
            Err(i) => (i - 1) as u32,
        };
        (src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        // 0->1, 0->2, 1->3, 2->3, 3->0
        EdgeList::from_edges(4, vec![(3, 0), (1, 3), (0, 1), (2, 3), (0, 2)])
    }

    #[test]
    fn csc_sorted_by_destination_then_source() {
        let g = GraphLayout::build(&diamond());
        // Canonical order: dst 0: (3,0); dst 1: (0,1); dst 2: (0,2); dst 3: (1,3),(2,3)
        assert_eq!(g.csc.offsets, vec![0, 1, 2, 3, 5]);
        assert_eq!(g.csc.neighbors, vec![3, 0, 0, 1, 2]);
    }

    #[test]
    fn csr_sorted_by_source_with_canonical_ids() {
        let g = GraphLayout::build(&diamond());
        assert_eq!(g.csr.offsets, vec![0, 2, 3, 4, 5]);
        assert_eq!(g.csr.neighbors, vec![1, 2, 3, 3, 0]);
        // Edge (0,1) is canonical id 1; (0,2) id 2; (1,3) id 3; (2,3) id 4; (3,0) id 0.
        assert_eq!(g.csr.edge_ids, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn csr_and_csc_agree_on_every_edge() {
        let g = GraphLayout::build(&diamond());
        for v in 0..4u32 {
            for (dst, eid) in g.csr.entries(v) {
                assert_eq!(g.edge_endpoints(eid), (v, dst));
            }
        }
        for v in 0..4u32 {
            for (src, eid) in g.csc.entries(v) {
                assert_eq!(g.edge_endpoints(eid), (src, v));
            }
        }
    }

    #[test]
    fn weights_follow_canonical_order() {
        let el = EdgeList::from_edges(3, vec![(1, 2), (0, 2), (0, 1)])
            .with_weights(vec![12.0, 2.0, 1.0]);
        let g = GraphLayout::build(&el);
        // Canonical: dst1:(0,1) w=1; dst2:(0,2) w=2, (1,2) w=12.
        assert_eq!(g.weights, vec![1.0, 2.0, 12.0]);
        // CSR row 0: (1, id0), (2, id1); row 1: (2, id2).
        let row0: Vec<_> = g.csr.entries(0).collect();
        assert_eq!(row0, vec![(1, 0), (2, 1)]);
        assert_eq!(g.weights[g.csr.entries(1).next().unwrap().1 as usize], 12.0);
    }

    #[test]
    fn interval_ranges_are_contiguous() {
        let g = GraphLayout::build(&diamond());
        assert_eq!(g.csc.interval_range(0, 4), 0..5);
        assert_eq!(g.csc.interval_range(1, 3), 1..3);
        assert_eq!(g.csr.interval_range(2, 4), 3..5);
    }

    #[test]
    fn degrees() {
        let g = GraphLayout::build(&diamond());
        assert_eq!(g.csr.degree(0), 2);
        assert_eq!(g.csc.degree(3), 2);
        assert_eq!(g.csc.degree(0), 1);
    }

    #[test]
    fn empty_rows_handled() {
        let el = EdgeList::from_edges(5, vec![(0, 4)]);
        let g = GraphLayout::build(&el);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_endpoints(0), (0, 4));
        assert_eq!(g.csc.degree(2), 0);
        assert_eq!(g.csr.entries(1).count(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = GraphLayout::build(&EdgeList::new(3));
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}

//! The shard data structure (Figure 7).
//!
//! A shard is the unit of host↔device streaming: for one vertex interval it
//! names every edge with a destination in the interval (the CSC slice — used
//! by gatherMap) and every edge with a source in the interval (the CSR
//! slice — used by scatter and FrontierActivate). Because both layouts sort
//! by the interval's own endpoint, a shard's edges occupy *contiguous*
//! ranges of the global CSC/CSR arrays — the property that makes shard
//! transfers large sequential copies rather than gathers (Section 4.2's
//! first reason for sorted edges).
//!
//! Shards here are descriptors: the backing arrays live in the
//! [`crate::csr::GraphLayout`] (the host's master copy), and engines
//! materialize device-resident buffers from these ranges.

use std::ops::Range;

use crate::csr::GraphLayout;
use crate::partition::{Interval, PartitionLogic};

/// Descriptor of one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shard {
    /// Shard index within the partition.
    pub id: usize,
    /// The vertex interval this shard owns.
    pub interval: Interval,
    /// Contiguous range of canonical edge ids (CSC positions) whose
    /// destination lies in the interval: the shard's in-edges.
    pub in_edges: Range<usize>,
    /// Contiguous range of CSR positions whose source lies in the interval:
    /// the shard's out-edges.
    pub out_edges: Range<usize>,
}

impl Shard {
    /// Vertices in this shard's interval.
    pub fn num_vertices(&self) -> u64 {
        self.interval.len() as u64
    }

    /// In-edge count.
    pub fn num_in_edges(&self) -> u64 {
        self.in_edges.len() as u64
    }

    /// Out-edge count.
    pub fn num_out_edges(&self) -> u64 {
        self.out_edges.len() as u64
    }

    /// Total edge mass (in + out), the load-balancing quantity.
    pub fn edge_mass(&self) -> u64 {
        self.num_in_edges() + self.num_out_edges()
    }
}

/// Materialize shard descriptors for a partition of `layout`.
pub fn build_shards(layout: &GraphLayout, intervals: &[Interval]) -> Vec<Shard> {
    intervals
        .iter()
        .enumerate()
        .map(|(id, &interval)| Shard {
            id,
            interval,
            in_edges: layout.csc.interval_range(interval.start, interval.end),
            out_edges: layout.csr.interval_range(interval.start, interval.end),
        })
        .collect()
}

/// Split `shard` into two sub-shards of approximately equal edge mass —
/// the memory governor's adaptive response when one shard's buffer set
/// exceeds device capacity. The cut point walks the interval accumulating
/// in+out degree and closes the left half once it holds half the mass,
/// so a skewed interval splits where the bytes are, not at the vertex
/// midpoint. Returns `None` for single-vertex intervals (the split floor:
/// a hub vertex's edges cannot be divided by interval surgery). Both
/// halves inherit `shard.id`; the caller renumbers.
pub fn split_shard(layout: &GraphLayout, shard: &Shard) -> Option<(Shard, Shard)> {
    let iv = shard.interval;
    if iv.len() < 2 {
        return None;
    }
    let total: u64 = (iv.start..iv.end)
        .map(|v| layout.csc.degree(v) + layout.csr.degree(v) + 1)
        .sum();
    let mut acc = 0u64;
    let mut mid = iv.start + 1;
    for v in iv.start..iv.end - 1 {
        acc += layout.csc.degree(v) + layout.csr.degree(v) + 1;
        if acc * 2 >= total {
            mid = v + 1;
            break;
        }
    }
    let (left, right) = iv.split_at(mid)?;
    let make = |interval: Interval| Shard {
        id: shard.id,
        interval,
        in_edges: layout.csc.interval_range(interval.start, interval.end),
        out_edges: layout.csr.interval_range(interval.start, interval.end),
    };
    Some((make(left), make(right)))
}

/// Partition `layout` with `logic` into at most `max_shards` shards.
pub fn partition_into_shards(
    layout: &GraphLayout,
    logic: &dyn PartitionLogic,
    max_shards: usize,
) -> Vec<Shard> {
    build_shards(layout, &logic.partition(layout, max_shards))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::partition::EvenEdgePartition;

    fn layout() -> GraphLayout {
        GraphLayout::build(&gen::rmat_g500(10, 8000, 77))
    }

    #[test]
    fn shards_cover_all_edges_exactly_once() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 7);
        let total_in: u64 = shards.iter().map(Shard::num_in_edges).sum();
        let total_out: u64 = shards.iter().map(Shard::num_out_edges).sum();
        assert_eq!(total_in, g.num_edges());
        assert_eq!(total_out, g.num_edges());
        // Ranges are contiguous and abut.
        for w in shards.windows(2) {
            assert_eq!(w[0].in_edges.end, w[1].in_edges.start);
            assert_eq!(w[0].out_edges.end, w[1].out_edges.start);
        }
        assert_eq!(shards[0].in_edges.start, 0);
        assert_eq!(shards.last().unwrap().in_edges.end as u64, g.num_edges());
    }

    #[test]
    fn shard_edges_match_interval_membership() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 5);
        for sh in &shards {
            // Every in-edge's destination is in the interval.
            for eid in sh.in_edges.clone() {
                let (_, dst) = g.edge_endpoints(eid as u32);
                assert!(sh.interval.contains(dst));
            }
            // Every out-edge's source is in the interval.
            for pos in sh.out_edges.clone() {
                let eid = g.csr.edge_id(pos);
                let (src, _) = g.edge_endpoints(eid);
                assert!(sh.interval.contains(src));
            }
        }
    }

    #[test]
    fn edge_mass_is_balanced() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 8);
        let avg = shards.iter().map(Shard::edge_mass).sum::<u64>() as f64 / shards.len() as f64;
        for sh in &shards {
            assert!((sh.edge_mass() as f64) < 3.0 * avg);
        }
    }

    #[test]
    fn split_shard_conserves_edges_and_balances_mass() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 3);
        for sh in &shards {
            let (l, r) = split_shard(&g, sh).unwrap();
            // Halves abut and cover the parent exactly.
            assert_eq!(l.interval.start, sh.interval.start);
            assert_eq!(l.interval.end, r.interval.start);
            assert_eq!(r.interval.end, sh.interval.end);
            assert_eq!(l.in_edges.start, sh.in_edges.start);
            assert_eq!(l.in_edges.end, r.in_edges.start);
            assert_eq!(r.in_edges.end, sh.in_edges.end);
            assert_eq!(l.out_edges.start, sh.out_edges.start);
            assert_eq!(l.out_edges.end, r.out_edges.start);
            assert_eq!(r.out_edges.end, sh.out_edges.end);
            // The cut lands near the mass midpoint, not just the vertex
            // midpoint (rmat graphs are heavily skewed).
            let lm = l.edge_mass() + l.num_vertices();
            let rm = r.edge_mass() + r.num_vertices();
            let total = lm + rm;
            assert!(lm * 2 >= total / 2, "left half too light: {lm} of {total}");
        }
    }

    #[test]
    fn split_shard_floor_is_one_vertex() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 2);
        let mut sh = shards[0].clone();
        // Split all the way down the left spine; must terminate at 1 vertex.
        while let Some((l, _)) = split_shard(&g, &sh) {
            assert!(l.num_vertices() < sh.num_vertices());
            sh = l;
        }
        assert_eq!(sh.num_vertices(), 1);
    }

    #[test]
    fn ids_are_sequential() {
        let g = layout();
        let shards = partition_into_shards(&g, &EvenEdgePartition, 4);
        for (i, sh) in shards.iter().enumerate() {
            assert_eq!(sh.id, i);
        }
    }
}

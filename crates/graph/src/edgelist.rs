//! Raw directed edge lists: the interchange format produced by generators
//! and loaders, consumed by the CSR/CSC builder.

use std::io::{self, BufRead, BufWriter, Read, Write};

/// Vertex identifier. 32 bits covers every dataset in the paper (the largest,
/// uk-2002, has 18.5 M vertices) with headroom.
pub type VertexId = u32;

/// A directed graph as an unordered list of `(src, dst)` pairs with optional
/// per-edge weights (aligned with `edges`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    /// Number of vertices; all endpoints are `< num_vertices`.
    pub num_vertices: u32,
    /// Directed edges in arbitrary order.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional weights, one per edge (used by SSSP).
    pub weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// An empty graph over `num_vertices` isolated vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Build from parts, validating endpoints and weight alignment.
    pub fn from_edges(num_vertices: u32, edges: Vec<(VertexId, VertexId)>) -> Self {
        assert!(
            edges
                .iter()
                .all(|&(s, d)| s < num_vertices && d < num_vertices),
            "edge endpoint out of range"
        );
        EdgeList {
            num_vertices,
            edges,
            weights: None,
        }
    }

    /// Attach weights (must align 1:1 with edges).
    pub fn with_weights(mut self, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), self.edges.len(), "weights/edges mismatch");
        self.weights = Some(weights);
        self
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for &(s, _) in &self.edges {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for &(_, d) in &self.edges {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Symmetrize: for every `(u, v)` also include `(v, u)`. The paper
    /// stores undirected inputs (orkut; CC inputs) as pairs of directed
    /// edges. Self-loops are kept single. Weights are mirrored.
    pub fn symmetrize(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        let mut weights = self.weights.as_ref().map(|w| {
            let mut v = Vec::with_capacity(w.len() * 2);
            v.extend_from_slice(w);
            v
        });
        edges.extend_from_slice(&self.edges);
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            if s != d {
                edges.push((d, s));
                if let (Some(out), Some(w)) = (weights.as_mut(), self.weights.as_ref()) {
                    out.push(w[i]);
                }
            }
        }
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
            weights,
        }
    }

    /// Remove duplicate edges and self-loops (weights of kept edges are
    /// preserved; among duplicates the first occurrence wins).
    pub fn dedup(&self) -> EdgeList {
        let mut idx: Vec<u32> = (0..self.edges.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| self.edges[i as usize]);
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        let mut last: Option<(u32, u32)> = None;
        for i in idx {
            let e = self.edges[i as usize];
            if e.0 == e.1 || Some(e) == last {
                continue;
            }
            last = Some(e);
            edges.push(e);
            if let (Some(ws), Some(w)) = (weights.as_mut(), self.weights.as_ref()) {
                ws.push(w[i as usize]);
            }
        }
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
            weights,
        }
    }

    /// Write in a simple text format: first line `V E`, then `src dst
    /// [weight]` per line.
    pub fn write_text<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "{} {}", self.num_vertices, self.edges.len())?;
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            match &self.weights {
                Some(ws) => writeln!(w, "{s} {d} {}", ws[i])?,
                None => writeln!(w, "{s} {d}")?,
            }
        }
        w.flush()
    }

    /// Write in a compact little-endian binary format:
    /// magic `GRED`, version u32, |V| u32, |E| u64, weights-flag u8, then
    /// `(src u32, dst u32)` pairs and optionally |E| f32 weights.
    pub fn write_binary<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(b"GRED")?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&self.num_vertices.to_le_bytes())?;
        w.write_all(&(self.edges.len() as u64).to_le_bytes())?;
        w.write_all(&[u8::from(self.weights.is_some())])?;
        for &(s, d) in &self.edges {
            w.write_all(&s.to_le_bytes())?;
            w.write_all(&d.to_le_bytes())?;
        }
        if let Some(ws) = &self.weights {
            for &x in ws {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Read the binary format written by [`EdgeList::write_binary`].
    ///
    /// Every failure is a typed [`io::Error`]: `InvalidData` for malformed
    /// content (bad magic, out-of-range endpoints, non-finite weights) and
    /// `UnexpectedEof` for truncation, each carrying the byte offset at
    /// which the problem was detected.
    pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
        let mut r = io::BufReader::new(r);
        let mut offset: u64 = 0;
        let bad = |offset: u64, msg: String| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{msg} (at byte offset {offset})"),
            )
        };
        fn take<R: Read>(
            r: &mut R,
            offset: &mut u64,
            buf: &mut [u8],
            what: &str,
        ) -> io::Result<()> {
            let at = *offset;
            r.read_exact(buf).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("truncated input reading {what} (at byte offset {at})"),
                    )
                } else {
                    e
                }
            })?;
            *offset += buf.len() as u64;
            Ok(())
        }
        let mut magic = [0u8; 4];
        take(&mut r, &mut offset, &mut magic, "magic")?;
        if &magic != b"GRED" {
            return Err(bad(0, format!("bad magic {magic:?}, expected \"GRED\"")));
        }
        let mut u32buf = [0u8; 4];
        let mut u64buf = [0u8; 8];
        take(&mut r, &mut offset, &mut u32buf, "version")?;
        let version = u32::from_le_bytes(u32buf);
        if version != 1 {
            return Err(bad(4, format!("unsupported version {version}")));
        }
        take(&mut r, &mut offset, &mut u32buf, "vertex count")?;
        let v = u32::from_le_bytes(u32buf);
        take(&mut r, &mut offset, &mut u64buf, "edge count")?;
        let m = u64::from_le_bytes(u64buf) as usize;
        let mut flag = [0u8; 1];
        take(&mut r, &mut offset, &mut flag, "weights flag")?;
        if flag[0] > 1 {
            return Err(bad(
                20,
                format!("weights flag must be 0 or 1, got {}", flag[0]),
            ));
        }
        // Grow incrementally past this point: `m` is attacker-controlled and
        // must not drive a huge up-front allocation before the payload is
        // proven to exist.
        let mut edges = Vec::with_capacity(m.min(1 << 20));
        for i in 0..m {
            let at = offset;
            take(&mut r, &mut offset, &mut u32buf, "edge source")?;
            let s = u32::from_le_bytes(u32buf);
            take(&mut r, &mut offset, &mut u32buf, "edge target")?;
            let d = u32::from_le_bytes(u32buf);
            if s >= v || d >= v {
                return Err(bad(
                    at,
                    format!("edge {i} ({s},{d}) out of range for {v} vertices"),
                ));
            }
            edges.push((s, d));
        }
        let weights = if flag[0] != 0 {
            let mut ws = Vec::with_capacity(m.min(1 << 20));
            for i in 0..m {
                let at = offset;
                take(&mut r, &mut offset, &mut u32buf, "edge weight")?;
                let w = f32::from_le_bytes(u32buf);
                if !w.is_finite() {
                    return Err(bad(at, format!("non-finite weight {w} on edge {i}")));
                }
                ws.push(w);
            }
            Some(ws)
        } else {
            None
        };
        Ok(EdgeList {
            num_vertices: v,
            edges,
            weights,
        })
    }

    /// Read the text format written by [`EdgeList::write_text`].
    ///
    /// Every failure is an `InvalidData` [`io::Error`] naming the 1-based
    /// line it was detected on: missing/garbled header, unparsable
    /// endpoints, out-of-range endpoints, non-finite weights (`NaN`/`inf`
    /// are rejected — they silently poison distance algorithms), and a
    /// header/body edge-count mismatch.
    pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
        let r = io::BufReader::new(r);
        let bad = |line: usize, msg: String| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{msg} (line {line})"))
        };
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| bad(1, "empty input, expected \"V E\" header".to_owned()))??;
        let mut it = header.split_whitespace();
        let parse = |s: Option<&str>, line: usize, what: &str| -> io::Result<u64> {
            let tok = s.ok_or_else(|| bad(line, format!("missing {what}")))?;
            tok.parse()
                .map_err(|e| bad(line, format!("bad {what} {tok:?}: {e}")))
        };
        let v = parse(it.next(), 1, "vertex count")? as u32;
        let m = parse(it.next(), 1, "edge count")? as usize;
        // Grow incrementally: the header's edge count is untrusted input
        // and must not drive a huge up-front allocation.
        let mut edges = Vec::with_capacity(m.min(1 << 20));
        let mut weights: Vec<f32> = Vec::new();
        let mut any_weight = false;
        for (ln, line) in lines.enumerate() {
            let lineno = ln + 2; // 1-based, after the header
            let line = line?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let s = parse(it.next(), lineno, "edge source")? as u32;
            let d = parse(it.next(), lineno, "edge target")? as u32;
            if s >= v || d >= v {
                return Err(bad(
                    lineno,
                    format!("edge ({s},{d}) out of range for {v} vertices"),
                ));
            }
            if let Some(wtok) = it.next() {
                let w: f32 = wtok
                    .parse()
                    .map_err(|e| bad(lineno, format!("bad weight {wtok:?}: {e}")))?;
                if !w.is_finite() {
                    return Err(bad(lineno, format!("non-finite weight {w}")));
                }
                if !any_weight {
                    weights.resize(edges.len(), 1.0);
                    any_weight = true;
                }
                weights.push(w);
            } else if any_weight {
                weights.push(1.0);
            }
            edges.push((s, d));
        }
        if edges.len() != m {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("header says {m} edges, found {}", edges.len()),
            ));
        }
        Ok(EdgeList {
            num_vertices: v,
            edges,
            weights: any_weight.then_some(weights),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 2, 1]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_validation() {
        EdgeList::from_edges(2, vec![(0, 2)]);
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (2, 2)]);
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 3); // (0,1), (2,2), (1,0)
        assert!(s.edges.contains(&(1, 0)));
    }

    #[test]
    fn symmetrize_mirrors_weights() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).with_weights(vec![5.0, 7.0]);
        let s = g.symmetrize();
        let w = s.weights.unwrap();
        assert_eq!(s.edges, vec![(0, 1), (1, 2), (1, 0), (2, 1)]);
        assert_eq!(w, vec![5.0, 7.0, 5.0, 7.0]);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (0, 1), (1, 1), (2, 0)]);
        let d = g.dedup();
        assert_eq!(d.edges, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_text(&mut buf).unwrap();
        let g2 = EdgeList::read_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_with_weights() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).with_weights(vec![1.5, 2.5]);
        let mut buf = Vec::new();
        g.write_text(&mut buf).unwrap();
        let g2 = EdgeList::read_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(EdgeList::read_text(&b""[..]).is_err());
        assert!(EdgeList::read_text(&b"2 1\n0 5\n"[..]).is_err());
        assert!(EdgeList::read_text(&b"2 2\n0 1\n"[..]).is_err());
    }

    #[test]
    fn text_errors_name_the_offending_line() {
        let err = EdgeList::read_text(&b"4 2\n0 1\n0 9\n"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "{err}");

        let err = EdgeList::read_text(&b"4 1\nx 1\n"[..]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.to_string().contains("edge source"), "{err}");

        let err = EdgeList::read_text(&b"nope\n"[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn text_rejects_non_finite_weights() {
        for w in ["NaN", "inf", "-inf"] {
            let input = format!("3 1\n0 1 {w}\n");
            let err = EdgeList::read_text(input.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{w}");
            assert!(err.to_string().contains("non-finite"), "{w}: {err}");
        }
    }

    #[test]
    fn binary_rejects_non_finite_weights() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (2, 0)]).with_weights(vec![0.5, 1.0]);
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        let wpos = buf.len() - 4; // last weight
        buf[wpos..].copy_from_slice(&f32::NAN.to_le_bytes());
        let err = EdgeList::read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("non-finite"), "{err}");
        assert!(err.to_string().contains("edge 1"), "{err}");
    }

    #[test]
    fn binary_errors_carry_byte_offsets() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();

        let err = EdgeList::read_binary(&buf[..buf.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(err.to_string().contains("byte offset"), "{err}");

        let edge0 = 4 + 4 + 4 + 8 + 1;
        let mut bad = buf.clone();
        bad[edge0 + 4..edge0 + 8].copy_from_slice(&999u32.to_le_bytes());
        let err = EdgeList::read_binary(&bad[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains(&format!("byte offset {edge0}")),
            "{err}"
        );

        let mut bad = buf.clone();
        bad[20] = 7; // weights flag must be 0 or 1
        let err = EdgeList::read_binary(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("weights flag"), "{err}");
    }

    #[test]
    fn binary_truncated_header_is_eof_not_allocation() {
        // A header promising u64::MAX edges with no payload must fail fast
        // with EOF rather than attempt a giant allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GRED");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.push(0);
        let err = EdgeList::read_binary(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        assert_eq!(EdgeList::read_binary(&buf[..]).unwrap(), g);

        let gw = EdgeList::from_edges(3, vec![(0, 1), (2, 0)]).with_weights(vec![0.5, -3.25]);
        let mut buf = Vec::new();
        gw.write_binary(&mut buf).unwrap();
        assert_eq!(EdgeList::read_binary(&buf[..]).unwrap(), gw);
    }

    #[test]
    fn binary_rejects_corruption() {
        assert!(EdgeList::read_binary(&b"NOPE"[..]).is_err());
        let g = sample();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        // Truncated payload.
        assert!(EdgeList::read_binary(&buf[..buf.len() - 3]).is_err());
        // Out-of-range endpoint: patch an edge's dst beyond |V|.
        let mut bad = buf.clone();
        let edge0_dst = 4 + 4 + 4 + 8 + 1 + 4;
        bad[edge0_dst..edge0_dst + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(EdgeList::read_binary(&bad[..]).is_err());
    }
}

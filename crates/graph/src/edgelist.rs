//! Raw directed edge lists: the interchange format produced by generators
//! and loaders, consumed by the CSR/CSC builder.

use std::io::{self, BufRead, BufWriter, Read, Write};

/// Vertex identifier. 32 bits covers every dataset in the paper (the largest,
/// uk-2002, has 18.5 M vertices) with headroom.
pub type VertexId = u32;

/// A directed graph as an unordered list of `(src, dst)` pairs with optional
/// per-edge weights (aligned with `edges`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeList {
    /// Number of vertices; all endpoints are `< num_vertices`.
    pub num_vertices: u32,
    /// Directed edges in arbitrary order.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Optional weights, one per edge (used by SSSP).
    pub weights: Option<Vec<f32>>,
}

impl EdgeList {
    /// An empty graph over `num_vertices` isolated vertices.
    pub fn new(num_vertices: u32) -> Self {
        EdgeList {
            num_vertices,
            edges: Vec::new(),
            weights: None,
        }
    }

    /// Build from parts, validating endpoints and weight alignment.
    pub fn from_edges(num_vertices: u32, edges: Vec<(VertexId, VertexId)>) -> Self {
        assert!(
            edges
                .iter()
                .all(|&(s, d)| s < num_vertices && d < num_vertices),
            "edge endpoint out of range"
        );
        EdgeList {
            num_vertices,
            edges,
            weights: None,
        }
    }

    /// Attach weights (must align 1:1 with edges).
    pub fn with_weights(mut self, weights: Vec<f32>) -> Self {
        assert_eq!(weights.len(), self.edges.len(), "weights/edges mismatch");
        self.weights = Some(weights);
        self
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for &(s, _) in &self.edges {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for &(_, d) in &self.edges {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Symmetrize: for every `(u, v)` also include `(v, u)`. The paper
    /// stores undirected inputs (orkut; CC inputs) as pairs of directed
    /// edges. Self-loops are kept single. Weights are mirrored.
    pub fn symmetrize(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        let mut weights = self.weights.as_ref().map(|w| {
            let mut v = Vec::with_capacity(w.len() * 2);
            v.extend_from_slice(w);
            v
        });
        edges.extend_from_slice(&self.edges);
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            if s != d {
                edges.push((d, s));
                if let (Some(out), Some(w)) = (weights.as_mut(), self.weights.as_ref()) {
                    out.push(w[i]);
                }
            }
        }
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
            weights,
        }
    }

    /// Remove duplicate edges and self-loops (weights of kept edges are
    /// preserved; among duplicates the first occurrence wins).
    pub fn dedup(&self) -> EdgeList {
        let mut idx: Vec<u32> = (0..self.edges.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| self.edges[i as usize]);
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut weights = self.weights.as_ref().map(|_| Vec::new());
        let mut last: Option<(u32, u32)> = None;
        for i in idx {
            let e = self.edges[i as usize];
            if e.0 == e.1 || Some(e) == last {
                continue;
            }
            last = Some(e);
            edges.push(e);
            if let (Some(ws), Some(w)) = (weights.as_mut(), self.weights.as_ref()) {
                ws.push(w[i as usize]);
            }
        }
        EdgeList {
            num_vertices: self.num_vertices,
            edges,
            weights,
        }
    }

    /// Write in a simple text format: first line `V E`, then `src dst
    /// [weight]` per line.
    pub fn write_text<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        writeln!(w, "{} {}", self.num_vertices, self.edges.len())?;
        for (i, &(s, d)) in self.edges.iter().enumerate() {
            match &self.weights {
                Some(ws) => writeln!(w, "{s} {d} {}", ws[i])?,
                None => writeln!(w, "{s} {d}")?,
            }
        }
        w.flush()
    }

    /// Write in a compact little-endian binary format:
    /// magic `GRED`, version u32, |V| u32, |E| u64, weights-flag u8, then
    /// `(src u32, dst u32)` pairs and optionally |E| f32 weights.
    pub fn write_binary<W: Write>(&self, w: W) -> io::Result<()> {
        let mut w = BufWriter::new(w);
        w.write_all(b"GRED")?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&self.num_vertices.to_le_bytes())?;
        w.write_all(&(self.edges.len() as u64).to_le_bytes())?;
        w.write_all(&[u8::from(self.weights.is_some())])?;
        for &(s, d) in &self.edges {
            w.write_all(&s.to_le_bytes())?;
            w.write_all(&d.to_le_bytes())?;
        }
        if let Some(ws) = &self.weights {
            for &x in ws {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Read the binary format written by [`EdgeList::write_binary`].
    pub fn read_binary<R: Read>(r: R) -> io::Result<EdgeList> {
        let mut r = io::BufReader::new(r);
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"GRED" {
            return Err(bad("bad magic"));
        }
        let mut u32buf = [0u8; 4];
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u32buf)?;
        if u32::from_le_bytes(u32buf) != 1 {
            return Err(bad("unsupported version"));
        }
        r.read_exact(&mut u32buf)?;
        let v = u32::from_le_bytes(u32buf);
        r.read_exact(&mut u64buf)?;
        let m = u64::from_le_bytes(u64buf) as usize;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            r.read_exact(&mut u32buf)?;
            let s = u32::from_le_bytes(u32buf);
            r.read_exact(&mut u32buf)?;
            let d = u32::from_le_bytes(u32buf);
            if s >= v || d >= v {
                return Err(bad("edge endpoint out of range"));
            }
            edges.push((s, d));
        }
        let weights = if flag[0] != 0 {
            let mut ws = Vec::with_capacity(m);
            for _ in 0..m {
                r.read_exact(&mut u32buf)?;
                ws.push(f32::from_le_bytes(u32buf));
            }
            Some(ws)
        } else {
            None
        };
        Ok(EdgeList {
            num_vertices: v,
            edges,
            weights,
        })
    }

    /// Read the text format written by [`EdgeList::write_text`].
    pub fn read_text<R: Read>(r: R) -> io::Result<EdgeList> {
        let r = io::BufReader::new(r);
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty input"))??;
        let mut it = header.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u64> {
            s.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))
        };
        let v = parse(it.next())? as u32;
        let m = parse(it.next())? as usize;
        let mut edges = Vec::with_capacity(m);
        let mut weights: Vec<f32> = Vec::new();
        let mut any_weight = false;
        for line in lines {
            let line = line?;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let s = parse(it.next())? as u32;
            let d = parse(it.next())? as u32;
            if s >= v || d >= v {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("edge ({s},{d}) out of range for {v} vertices"),
                ));
            }
            if let Some(wtok) = it.next() {
                let w: f32 = wtok
                    .parse()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
                if !any_weight {
                    weights.resize(edges.len(), 1.0);
                    any_weight = true;
                }
                weights.push(w);
            } else if any_weight {
                weights.push(1.0);
            }
            edges.push((s, d));
        }
        if edges.len() != m {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("header says {m} edges, found {}", edges.len()),
            ));
        }
        Ok(EdgeList {
            num_vertices: v,
            edges,
            weights: any_weight.then_some(weights),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeList {
        EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 2, 1]);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn endpoint_validation() {
        EdgeList::from_edges(2, vec![(0, 2)]);
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (2, 2)]);
        let s = g.symmetrize();
        assert_eq!(s.num_edges(), 3); // (0,1), (2,2), (1,0)
        assert!(s.edges.contains(&(1, 0)));
    }

    #[test]
    fn symmetrize_mirrors_weights() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).with_weights(vec![5.0, 7.0]);
        let s = g.symmetrize();
        let w = s.weights.unwrap();
        assert_eq!(s.edges, vec![(0, 1), (1, 2), (1, 0), (2, 1)]);
        assert_eq!(w, vec![5.0, 7.0, 5.0, 7.0]);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (0, 1), (1, 1), (2, 0)]);
        let d = g.dedup();
        assert_eq!(d.edges, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_text(&mut buf).unwrap();
        let g2 = EdgeList::read_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_with_weights() {
        let g = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]).with_weights(vec![1.5, 2.5]);
        let mut buf = Vec::new();
        g.write_text(&mut buf).unwrap();
        let g2 = EdgeList::read_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(EdgeList::read_text(&b""[..]).is_err());
        assert!(EdgeList::read_text(&b"2 1\n0 5\n"[..]).is_err());
        assert!(EdgeList::read_text(&b"2 2\n0 1\n"[..]).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        assert_eq!(EdgeList::read_binary(&buf[..]).unwrap(), g);

        let gw = EdgeList::from_edges(3, vec![(0, 1), (2, 0)]).with_weights(vec![0.5, -3.25]);
        let mut buf = Vec::new();
        gw.write_binary(&mut buf).unwrap();
        assert_eq!(EdgeList::read_binary(&buf[..]).unwrap(), gw);
    }

    #[test]
    fn binary_rejects_corruption() {
        assert!(EdgeList::read_binary(&b"NOPE"[..]).is_err());
        let g = sample();
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        // Truncated payload.
        assert!(EdgeList::read_binary(&buf[..buf.len() - 3]).is_err());
        // Out-of-range endpoint: patch an edge's dst beyond |V|.
        let mut bad = buf.clone();
        let edge0_dst = 4 + 4 + 4 + 8 + 1 + 4;
        bad[edge0_dst..edge0_dst + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(EdgeList::read_binary(&bad[..]).is_err());
    }
}

//! WebGraph-style compressed neighbor lists for shard streaming.
//!
//! GraphReduce is transfer-bound: every out-of-core iteration re-ships
//! shard topology over PCIe, and ROADMAP item 3 calls for shipping fewer
//! bytes per shard. The dual layout of Section 4.2 already sorts every
//! adjacency row (CSC rows by source, CSR rows by destination), which is
//! exactly the precondition for the gap-compression family WebGraph built
//! for power-law webs: successive neighbors in a sorted row are close
//! together, so the *differences* are small integers that universal codes
//! shrink to a few bits each.
//!
//! # Encoding
//!
//! Each adjacency row of vertex `v` is encoded independently:
//!
//! - the first neighbor is stored as the zig-zagged signed offset from `v`
//!   (neighbors cluster around their owner on locality-rich graphs);
//! - every following neighbor is stored as the gap from its predecessor
//!   (`>= 0`; zero gaps encode multi-edges);
//! - CSC rows stop there — canonical edge ids are *implicit* (CSC position
//!   is the canonical numbering, so `eid = csc.offsets[v] + k`);
//! - CSR rows interleave the canonical edge id after each destination: the
//!   first id absolutely, the rest as `eid - prev_eid - 1` (ids strictly
//!   increase along a CSR row because the canonical order sorts by
//!   destination first).
//!
//! Row degrees are *not* encoded: per-vertex offsets/degrees are static
//! device metadata (see `SizeModel::static_bytes`), so decoders take the
//! count from the raw layout and the bit stream spends nothing on it.
//!
//! Two self-delimiting integer codes back the gaps, selectable via
//! [`CompressionCodec`]:
//!
//! - **varint** — LEB128, 7 payload bits per byte. Byte-aligned-ish,
//!   cheap to decode, a safe default for mild skew.
//! - **ζ_k** (Boldi–Vigna) — tuned for the power-law gap distributions of
//!   web/social graphs; `k = 3` is WebGraph's recommended default.
//!
//! Per-vertex *bit* offsets are kept alongside the stream so any vertex
//! interval's compressed extent is an O(1) subtraction — the memory
//! governor plans transfers in compressed bytes without decoding anything.
//!
//! Decoding is lazy and allocation-free: [`TopoView`] hands the host
//! kernels an iterator per row that walks the bit stream in place, so the
//! Serial/Dense/Sparse phase shapes read through the view without ever
//! materializing a whole shard. All variants yield entries in exactly the
//! raw layout's order, which is what keeps compressed runs bit-identical.

use crate::csr::{Adjacency, GraphLayout};
use crate::edgelist::VertexId;

// ---------------------------------------------------------------------------
// Codec selection
// ---------------------------------------------------------------------------

/// Universal code used for gap values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompressionCodec {
    /// LEB128 variable-length bytes (7 payload bits per byte).
    Varint,
    /// Boldi–Vigna ζ_k code; `k` in `1..=4` (3 is the WebGraph default).
    Zeta(u32),
}

impl Default for CompressionCodec {
    fn default() -> Self {
        CompressionCodec::Zeta(3)
    }
}

impl CompressionCodec {
    /// Stable short name (decision records, CLI flags, run reports).
    pub fn name(&self) -> &'static str {
        match self {
            CompressionCodec::Varint => "varint",
            CompressionCodec::Zeta(1) => "zeta1",
            CompressionCodec::Zeta(2) => "zeta2",
            CompressionCodec::Zeta(3) => "zeta3",
            CompressionCodec::Zeta(4) => "zeta4",
            CompressionCodec::Zeta(_) => "zeta",
        }
    }

    /// Parse a CLI-style codec name (`varint`, `zeta`, `zeta1`..`zeta4`).
    pub fn parse(s: &str) -> Option<CompressionCodec> {
        match s {
            "varint" => Some(CompressionCodec::Varint),
            "zeta" | "zeta3" => Some(CompressionCodec::Zeta(3)),
            "zeta1" => Some(CompressionCodec::Zeta(1)),
            "zeta2" => Some(CompressionCodec::Zeta(2)),
            "zeta4" => Some(CompressionCodec::Zeta(4)),
            _ => None,
        }
    }

    /// Shrinkage parameter `k` (ζ only), clamped to a sane range.
    fn k(&self) -> u32 {
        match self {
            CompressionCodec::Varint => 0,
            CompressionCodec::Zeta(k) => (*k).clamp(1, 8),
        }
    }

    /// Append the non-negative integer `x` to the bit stream.
    pub fn write(&self, w: &mut BitWriter, x: u64) {
        match self {
            CompressionCodec::Varint => {
                let mut x = x;
                loop {
                    let byte = x & 0x7f;
                    x >>= 7;
                    if x == 0 {
                        w.write_bits(byte, 8);
                        break;
                    }
                    w.write_bits(byte | 0x80, 8);
                }
            }
            CompressionCodec::Zeta(_) => {
                // ζ_k encodes positive integers; shift the domain by one so
                // zero gaps (multi-edges) stay representable.
                let n = x + 1;
                let k = self.k();
                let h = (63 - n.leading_zeros() as u64) / k as u64;
                debug_assert!(n >= 1u64 << (h * k as u64));
                // Unary prefix: h zeros then a one.
                for _ in 0..h {
                    w.write_bits(0, 1);
                }
                w.write_bits(1, 1);
                // Minimal binary of n - 2^(hk) over an interval of size
                // 2^(hk) * (2^k - 1).
                let lo = 1u64 << (h * k as u64);
                let z = (lo << k) - lo;
                write_minimal_binary(w, n - lo, z);
            }
        }
    }

    /// Read one integer previously written with [`CompressionCodec::write`].
    pub fn read(&self, r: &mut BitReader<'_>) -> u64 {
        match self {
            CompressionCodec::Varint => {
                let mut x = 0u64;
                let mut shift = 0u32;
                loop {
                    let byte = r.read_bits(8);
                    x |= (byte & 0x7f) << shift;
                    if byte & 0x80 == 0 {
                        return x;
                    }
                    shift += 7;
                }
            }
            CompressionCodec::Zeta(_) => {
                let k = self.k();
                let mut h = 0u64;
                while r.read_bits(1) == 0 {
                    h += 1;
                }
                let lo = 1u64 << (h * k as u64);
                let z = (lo << k) - lo;
                lo + read_minimal_binary(r, z) - 1
            }
        }
    }
}

/// Minimal binary code of `m` over `[0, z)`: values below the threshold
/// take `ceil(log2 z) - 1` bits, the rest the full width. Bits go out
/// MSB-first — the decoder must see high bits before deciding whether a
/// final low bit follows.
fn write_minimal_binary(w: &mut BitWriter, m: u64, z: u64) {
    debug_assert!(m < z);
    if z <= 1 {
        return; // single-value interval: zero bits
    }
    let s = 64 - (z - 1).leading_zeros(); // ceil(log2 z)
    let threshold = (1u64 << s) - z;
    let (value, n) = if m < threshold {
        (m, s - 1)
    } else {
        (m + threshold, s)
    };
    for i in (0..n).rev() {
        w.write_bits((value >> i) & 1, 1);
    }
}

fn read_minimal_binary(r: &mut BitReader<'_>, z: u64) -> u64 {
    if z <= 1 {
        return 0;
    }
    let s = 64 - (z - 1).leading_zeros();
    let threshold = (1u64 << s) - z;
    let mut m = 0u64;
    for _ in 0..s - 1 {
        m = (m << 1) | r.read_bits(1);
    }
    if m < threshold {
        m
    } else {
        ((m << 1) | r.read_bits(1)) - threshold
    }
}

/// Zig-zag mapping of a signed offset into the non-negative code domain.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

// ---------------------------------------------------------------------------
// Bit stream
// ---------------------------------------------------------------------------

/// Append-only little-endian bit sink (low bits of each word first).
#[derive(Default)]
pub struct BitWriter {
    words: Vec<u64>,
    bit_len: u64,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Append the low `n` bits of `value` (`n <= 57` per call is all the
    /// codecs need; values are masked defensively).
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 57);
        if n == 0 {
            return;
        }
        let value = value & ((1u64 << n) - 1);
        let word = (self.bit_len / 64) as usize;
        let off = (self.bit_len % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << off;
        if off + n > 64 {
            self.words.push(value >> (64 - off));
        }
        self.bit_len += n as u64;
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bit_len
    }

    pub fn finish(self) -> Vec<u64> {
        self.words
    }
}

/// Cursor over a [`BitWriter`]'s word stream.
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(words: &'a [u64], start_bit: u64) -> BitReader<'a> {
        BitReader {
            words,
            pos: start_bit,
        }
    }

    /// Read `n <= 57` bits, advancing the cursor.
    pub fn read_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if n == 0 {
            return 0;
        }
        let word = (self.pos / 64) as usize;
        let off = (self.pos % 64) as u32;
        let mut v = self.words[word] >> off;
        if off + n > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        self.pos += n as u64;
        v & ((1u64 << n) - 1)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }
}

// ---------------------------------------------------------------------------
// Compressed adjacency
// ---------------------------------------------------------------------------

/// One gap-compressed adjacency direction with per-vertex bit offsets.
#[derive(Clone, Debug)]
pub struct CompressedAdjacency {
    /// `bit_offsets[v]..bit_offsets[v+1]` is vertex `v`'s row in `bits`.
    pub bit_offsets: Vec<u64>,
    bits: Vec<u64>,
    codec: CompressionCodec,
    /// CSR rows interleave explicit canonical edge ids; CSC ids are
    /// implicit (canonical order *is* CSC position).
    explicit_eids: bool,
}

impl CompressedAdjacency {
    fn build(adj: &Adjacency, codec: CompressionCodec, explicit_eids: bool) -> CompressedAdjacency {
        let n = adj.offsets.len() - 1;
        let mut w = BitWriter::new();
        let mut bit_offsets = Vec::with_capacity(n + 1);
        bit_offsets.push(0);
        for v in 0..n as u32 {
            let mut prev_nbr = 0u32;
            let mut prev_eid = 0u32;
            for (k, (nbr, eid)) in adj.entries(v).enumerate() {
                if k == 0 {
                    codec.write(&mut w, zigzag(nbr as i64 - v as i64));
                    if explicit_eids {
                        codec.write(&mut w, eid as u64);
                    }
                } else {
                    codec.write(&mut w, (nbr - prev_nbr) as u64);
                    if explicit_eids {
                        // Canonical ids strictly increase along a CSR row.
                        debug_assert!(eid > prev_eid);
                        codec.write(&mut w, (eid - prev_eid - 1) as u64);
                    }
                }
                prev_nbr = nbr;
                prev_eid = eid;
            }
            bit_offsets.push(w.bit_len());
        }
        CompressedAdjacency {
            bit_offsets,
            bits: w.finish(),
            codec,
            explicit_eids,
        }
    }

    /// Compressed extent of the vertex interval `[lo, hi)` in bytes.
    pub fn interval_bytes(&self, lo: VertexId, hi: VertexId) -> u64 {
        (self.bit_offsets[hi as usize] - self.bit_offsets[lo as usize]).div_ceil(8)
    }

    /// Total compressed bytes of the whole direction.
    pub fn total_bytes(&self) -> u64 {
        self.bit_offsets.last().copied().unwrap_or(0).div_ceil(8)
    }

    /// Lazy decoder for vertex `v`'s row. `count` must be the raw degree
    /// (taken from static layout metadata); `eid_base` seeds implicit
    /// canonical ids for CSC rows and is ignored for CSR rows.
    pub fn row(&self, v: VertexId, count: u64, eid_base: u64) -> CompressedRowIter<'_> {
        CompressedRowIter {
            reader: BitReader::new(&self.bits, self.bit_offsets[v as usize]),
            codec: self.codec,
            explicit_eids: self.explicit_eids,
            v,
            remaining: count,
            first: true,
            prev_nbr: 0,
            prev_eid: 0,
            implicit_eid: eid_base,
        }
    }
}

/// Streaming decoder over one compressed row; yields `(neighbor, eid)` in
/// exactly the raw layout's order.
pub struct CompressedRowIter<'a> {
    reader: BitReader<'a>,
    codec: CompressionCodec,
    explicit_eids: bool,
    v: VertexId,
    remaining: u64,
    first: bool,
    prev_nbr: u32,
    prev_eid: u32,
    implicit_eid: u64,
}

impl Iterator for CompressedRowIter<'_> {
    type Item = (VertexId, u32);

    fn next(&mut self) -> Option<(VertexId, u32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let nbr;
        let eid;
        if self.first {
            self.first = false;
            nbr = (self.v as i64 + unzigzag(self.codec.read(&mut self.reader))) as u32;
            eid = if self.explicit_eids {
                self.codec.read(&mut self.reader) as u32
            } else {
                self.implicit_eid as u32
            };
        } else {
            nbr = self.prev_nbr + self.codec.read(&mut self.reader) as u32;
            eid = if self.explicit_eids {
                self.prev_eid + 1 + self.codec.read(&mut self.reader) as u32
            } else {
                self.implicit_eid as u32
            };
        }
        self.implicit_eid += 1;
        self.prev_nbr = nbr;
        self.prev_eid = eid;
        Some((nbr, eid))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

// ---------------------------------------------------------------------------
// Whole-graph compressed topology
// ---------------------------------------------------------------------------

/// Both adjacency directions compressed under one codec, plus the facts
/// the byte accounting needs (whether real weights must still ship raw).
#[derive(Clone, Debug)]
pub struct CompressedTopology {
    pub csc: CompressedAdjacency,
    pub csr: CompressedAdjacency,
    pub codec: CompressionCodec,
    /// Whether the graph carries non-trivial weights. All-1.0 weights are
    /// synthesized device-side and never ship.
    pub weighted: bool,
}

impl CompressedTopology {
    /// Compress both directions of `layout` under `codec`.
    pub fn build(layout: &GraphLayout, codec: CompressionCodec) -> CompressedTopology {
        CompressedTopology {
            csc: CompressedAdjacency::build(&layout.csc, codec, false),
            csr: CompressedAdjacency::build(&layout.csr, codec, true),
            codec,
            weighted: layout.weights.iter().any(|&w| w != 1.0),
        }
    }

    /// Total compressed topology bytes (both directions).
    pub fn total_bytes(&self) -> u64 {
        self.csc.total_bytes() + self.csr.total_bytes()
    }
}

// ---------------------------------------------------------------------------
// Topology view
// ---------------------------------------------------------------------------

/// What the host GAS kernels read topology through: raw adjacency slices,
/// or lazy per-row decoders when a compressed topology is installed. Both
/// paths yield entries in identical order, so results are bit-identical.
#[derive(Clone, Copy)]
pub struct TopoView<'a> {
    layout: &'a GraphLayout,
    comp: Option<&'a CompressedTopology>,
}

impl<'a> TopoView<'a> {
    /// View over the raw dual layout.
    pub fn raw(layout: &'a GraphLayout) -> TopoView<'a> {
        TopoView { layout, comp: None }
    }

    /// View decoding rows lazily from `comp`.
    pub fn compressed(layout: &'a GraphLayout, comp: &'a CompressedTopology) -> TopoView<'a> {
        TopoView {
            layout,
            comp: Some(comp),
        }
    }

    /// The underlying raw layout (degrees, offsets, weights are static
    /// metadata and always read raw).
    pub fn layout(&self) -> &'a GraphLayout {
        self.layout
    }

    /// Whether rows decode from the compressed stream.
    pub fn is_compressed(&self) -> bool {
        self.comp.is_some()
    }

    /// In-edges of `v` as `(source, canonical eid)`, CSC order.
    pub fn csc_entries(&self, v: VertexId) -> TopoRowIter<'a> {
        match self.comp {
            None => TopoRowIter::raw(&self.layout.csc, v),
            Some(c) => TopoRowIter::Decoded(c.csc.row(
                v,
                self.layout.csc.degree(v),
                self.layout.csc.offsets[v as usize],
            )),
        }
    }

    /// Out-edges of `v` as `(destination, canonical eid)`, CSR order.
    pub fn csr_entries(&self, v: VertexId) -> TopoRowIter<'a> {
        match self.comp {
            None => TopoRowIter::raw(&self.layout.csr, v),
            Some(c) => TopoRowIter::Decoded(c.csr.row(v, self.layout.csr.degree(v), 0)),
        }
    }
}

/// Row iterator behind [`TopoView`]: raw slice walk or bit-stream decode.
pub enum TopoRowIter<'a> {
    Raw {
        adj: &'a Adjacency,
        idx: usize,
        end: usize,
    },
    Decoded(CompressedRowIter<'a>),
}

impl<'a> TopoRowIter<'a> {
    fn raw(adj: &'a Adjacency, v: VertexId) -> TopoRowIter<'a> {
        let r = adj.range(v);
        TopoRowIter::Raw {
            adj,
            idx: r.start,
            end: r.end,
        }
    }
}

impl Iterator for TopoRowIter<'_> {
    type Item = (VertexId, u32);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, u32)> {
        match self {
            TopoRowIter::Raw { adj, idx, end } => {
                if idx < end {
                    let i = *idx;
                    *idx += 1;
                    Some((adj.neighbors[i], adj.edge_id(i)))
                } else {
                    None
                }
            }
            TopoRowIter::Decoded(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            TopoRowIter::Raw { idx, end, .. } => (*end - *idx, Some(*end - *idx)),
            TopoRowIter::Decoded(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::gen;

    const CODECS: [CompressionCodec; 4] = [
        CompressionCodec::Varint,
        CompressionCodec::Zeta(1),
        CompressionCodec::Zeta(3),
        CompressionCodec::Zeta(4),
    ];

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits((1 << 57) - 1, 57); // spans words
        w.write_bits(0, 0);
        w.write_bits(0x5a, 8);
        let words = w.finish();
        let mut r = BitReader::new(&words, 0);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(57), (1 << 57) - 1);
        assert_eq!(r.read_bits(8), 0x5a);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn codec_integer_roundtrip() {
        let values: Vec<u64> = (0..200)
            .chain([
                255,
                256,
                1000,
                65535,
                65536,
                1 << 20,
                (1 << 32) - 1,
                1 << 40,
            ])
            .collect();
        for codec in CODECS {
            let mut w = BitWriter::new();
            for &v in &values {
                codec.write(&mut w, v);
            }
            let words = w.finish();
            let mut r = BitReader::new(&words, 0);
            for &v in &values {
                assert_eq!(codec.read(&mut r), v, "{} value {v}", codec.name());
            }
        }
    }

    #[test]
    fn zeta_small_gaps_beat_varint() {
        // ζ3 spends ~4 bits on tiny gaps; varint spends 8.
        let mut wz = BitWriter::new();
        let mut wv = BitWriter::new();
        for g in 0..64u64 {
            CompressionCodec::Zeta(3).write(&mut wz, g % 4);
            CompressionCodec::Varint.write(&mut wv, g % 4);
        }
        assert!(wz.bit_len() < wv.bit_len());
    }

    #[test]
    fn codec_names_parse_back() {
        for codec in CODECS {
            assert_eq!(CompressionCodec::parse(codec.name()), Some(codec));
        }
        assert_eq!(
            CompressionCodec::parse("zeta"),
            Some(CompressionCodec::Zeta(3))
        );
        assert_eq!(CompressionCodec::parse("lz4"), None);
        assert_eq!(CompressionCodec::default(), CompressionCodec::Zeta(3));
    }

    fn assert_topo_roundtrip(layout: &GraphLayout, codec: CompressionCodec) {
        let comp = CompressedTopology::build(layout, codec);
        let view = TopoView::compressed(layout, &comp);
        for v in 0..layout.num_vertices() {
            let raw_csc: Vec<_> = layout.csc.entries(v).collect();
            let dec_csc: Vec<_> = view.csc_entries(v).collect();
            assert_eq!(raw_csc, dec_csc, "csc row {v} ({})", codec.name());
            let raw_csr: Vec<_> = layout.csr.entries(v).collect();
            let dec_csr: Vec<_> = view.csr_entries(v).collect();
            assert_eq!(raw_csr, dec_csr, "csr row {v} ({})", codec.name());
        }
    }

    #[test]
    fn roundtrip_exact_on_generated_graphs() {
        let graphs = [
            gen::uniform(512, 4096, 3).symmetrize(),
            gen::rmat_g500(10, 1 << 12, 42),
            gen::grid2d_with_edges(576, 2304, 1),
            EdgeList::new(17), // empty rows everywhere
        ];
        for el in &graphs {
            let layout = GraphLayout::build(el);
            for codec in CODECS {
                assert_topo_roundtrip(&layout, codec);
            }
        }
    }

    #[test]
    fn roundtrip_exact_with_multi_edges_and_hubs() {
        // Duplicate edges (zero gaps) and a hub with back-pointing
        // neighbors (negative first offsets).
        let el = EdgeList::from_edges(
            8,
            vec![
                (7, 0),
                (7, 0),
                (7, 1),
                (0, 7),
                (1, 7),
                (2, 7),
                (3, 7),
                (3, 7),
                (5, 4),
                (4, 5),
            ],
        );
        let layout = GraphLayout::build(&el);
        for codec in CODECS {
            assert_topo_roundtrip(&layout, codec);
        }
    }

    #[test]
    fn interval_bytes_sum_to_total() {
        let layout = GraphLayout::build(&gen::rmat_g500(9, 4096, 7).symmetrize());
        let comp = CompressedTopology::build(&layout, CompressionCodec::Zeta(3));
        let n = layout.num_vertices();
        let mid = n / 2;
        for adj in [&comp.csc, &comp.csr] {
            let whole = adj.interval_bytes(0, n);
            // Bit extents are exact; byte rounding may add at most 1 per cut.
            let parts = adj.interval_bytes(0, mid) + adj.interval_bytes(mid, n);
            assert!(parts >= whole && parts <= whole + 1);
            assert_eq!(adj.total_bytes(), adj.interval_bytes(0, n));
        }
        assert_eq!(
            comp.total_bytes(),
            comp.csc.total_bytes() + comp.csr.total_bytes()
        );
    }

    #[test]
    fn compression_beats_raw_on_skewed_graphs() {
        // Raw topology ships 12 B per edge per direction in the cost
        // model; a scale-10 RMAT should compress well below half of the
        // 4 B/edge neighbor words alone.
        let layout = GraphLayout::build(&gen::rmat_g500(10, 1 << 13, 42).symmetrize());
        let raw_topo = layout.num_edges() * 12 * 2;
        for codec in CODECS {
            let comp = CompressedTopology::build(&layout, codec);
            let ratio = raw_topo as f64 / comp.total_bytes() as f64;
            assert!(
                ratio > 2.5,
                "{}: ratio {ratio:.2} (raw {raw_topo} vs {})",
                codec.name(),
                comp.total_bytes()
            );
        }
    }

    #[test]
    fn weighted_flag_tracks_real_weights() {
        let el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)]);
        let layout = GraphLayout::build(&el);
        let comp = CompressedTopology::build(&layout, CompressionCodec::Varint);
        assert!(!comp.weighted);
        let wl = GraphLayout::build(&el.clone().with_weights(vec![2.0, 1.0]));
        let comp = CompressedTopology::build(&wl, CompressionCodec::Varint);
        assert!(comp.weighted);
    }
}

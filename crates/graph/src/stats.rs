//! Structural statistics of a graph layout: the quantities that predict
//! which engine wins on it (degree skew → CTA balancing and CuSha vs
//! MapGraph; effective diameter → frontier shapes and iteration counts;
//! density → in-/out-of-memory classification).

use crate::csr::GraphLayout;
use crate::edgelist::VertexId;

/// Summary statistics of one graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    pub num_vertices: u32,
    pub num_edges: u64,
    /// Mean directed degree |E| / |V|.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u64,
    /// Maximum in-degree.
    pub max_in_degree: u64,
    /// Vertices with no edges at all.
    pub isolated_vertices: u32,
    /// Gini-style skew of the out-degree distribution in [0, 1):
    /// 0 = perfectly regular, →1 = a few hubs own everything.
    pub degree_skew: f64,
    /// BFS eccentricity from the max-out-degree vertex (a cheap diameter
    /// proxy; exact diameter is O(V·E)).
    pub bfs_eccentricity: u32,
    /// Fraction of vertices that BFS from that vertex reaches.
    pub bfs_coverage: f64,
}

impl GraphStats {
    /// Compute all statistics in O(V + E) plus one BFS.
    pub fn compute(layout: &GraphLayout) -> GraphStats {
        let n = layout.num_vertices();
        let m = layout.num_edges();
        let mut max_out = 0u64;
        let mut max_in = 0u64;
        let mut isolated = 0u32;
        let mut degrees: Vec<u64> = Vec::with_capacity(n as usize);
        for v in 0..n {
            let dout = layout.csr.degree(v);
            let din = layout.csc.degree(v);
            max_out = max_out.max(dout);
            max_in = max_in.max(din);
            if dout + din == 0 {
                isolated += 1;
            }
            degrees.push(dout);
        }
        // Gini coefficient over sorted out-degrees.
        degrees.sort_unstable();
        let total: u64 = degrees.iter().sum();
        let skew = if total == 0 || n == 0 {
            0.0
        } else {
            let mut weighted = 0.0f64;
            for (i, &d) in degrees.iter().enumerate() {
                weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64;
            }
            (weighted / (n as f64 * total as f64)).max(0.0)
        };

        // BFS from the first max-out-degree vertex (first, for a stable
        // choice under ties).
        let mut source: VertexId = 0;
        for v in 1..n {
            if layout.csr.degree(v) > layout.csr.degree(source) {
                source = v;
            }
        }
        let (ecc, reached) = if n == 0 {
            (0, 0)
        } else {
            let mut depth = vec![u32::MAX; n as usize];
            depth[source as usize] = 0;
            let mut q = std::collections::VecDeque::from([source]);
            let mut ecc = 0;
            let mut reached = 0u32;
            while let Some(v) = q.pop_front() {
                reached += 1;
                for (dst, _) in layout.csr.entries(v) {
                    if depth[dst as usize] == u32::MAX {
                        depth[dst as usize] = depth[v as usize] + 1;
                        ecc = ecc.max(depth[dst as usize]);
                        q.push_back(dst);
                    }
                }
            }
            (ecc, reached)
        };

        GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated_vertices: isolated,
            degree_skew: skew,
            bfs_eccentricity: ecc,
            bfs_coverage: if n == 0 {
                0.0
            } else {
                reached as f64 / n as f64
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "|V| = {}, |E| = {}", self.num_vertices, self.num_edges)?;
        writeln!(
            f,
            "degree: avg {:.2}, max out {}, max in {}, skew {:.3}",
            self.avg_degree, self.max_out_degree, self.max_in_degree, self.degree_skew
        )?;
        write!(
            f,
            "isolated: {} | BFS from hub: eccentricity {}, coverage {:.1}%",
            self.isolated_vertices,
            self.bfs_eccentricity,
            100.0 * self.bfs_coverage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::gen;

    #[test]
    fn path_graph_stats() {
        let el = EdgeList::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let s = GraphStats::compute(&GraphLayout::build(&el));
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.bfs_eccentricity, 4);
        assert_eq!(s.bfs_coverage, 1.0);
        assert_eq!(s.isolated_vertices, 0);
        assert!(s.degree_skew < 0.25, "near-regular: {}", s.degree_skew);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let s = GraphStats::compute(&GraphLayout::build(&EdgeList::from_edges(100, edges)));
        assert_eq!(s.max_out_degree, 99);
        assert!(s.degree_skew > 0.9, "star skew: {}", s.degree_skew);
        assert_eq!(s.bfs_eccentricity, 1);
    }

    #[test]
    fn rmat_skew_exceeds_stencil_skew() {
        let rmat = GraphStats::compute(&GraphLayout::build(&gen::rmat_g500(12, 50_000, 3)));
        let mesh = GraphStats::compute(&GraphLayout::build(&gen::stencil3d(4096, 50_000, 3)));
        assert!(
            rmat.degree_skew > 2.0 * mesh.degree_skew,
            "rmat {} vs mesh {}",
            rmat.degree_skew,
            mesh.degree_skew
        );
        assert!(rmat.bfs_eccentricity < mesh.bfs_eccentricity);
    }

    #[test]
    fn isolated_vertices_counted() {
        let el = EdgeList::from_edges(10, vec![(0, 1)]);
        let s = GraphStats::compute(&GraphLayout::build(&el));
        assert_eq!(s.isolated_vertices, 8);
        assert!(s.bfs_coverage < 0.3);
    }

    #[test]
    fn empty_graph() {
        let s = GraphStats::compute(&GraphLayout::build(&EdgeList::new(0)));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.degree_skew, 0.0);
        let _ = format!("{s}");
    }
}

//! Satellite: batched serving is bit-identical to standalone runs.
//!
//! For K ∈ {1, 4, 32} BFS queries, one `GraphServe` drain (which folds
//! them into MS-BFS batches) must produce, per query, exactly the depth
//! vector a standalone `GraphReduce::run` of `Bfs::new(source)` produces —
//! and the per-query stats lanes must demux correctly (batch ids, lane
//! ids, batch sizes). Mixed-deadline submission orders must not change any
//! answer.

use gr_algorithms::Bfs;
use gr_graph::{gen, GraphLayout};
use gr_observe::{Decision, Observer};
use gr_serve::{GraphServe, QueryOutput, QuerySpec, ServeConfig};
use gr_sim::Platform;
use graphreduce::{GraphReduce, GraphSession, Options};

fn fixture() -> GraphLayout {
    GraphLayout::build(&gen::rmat_g500(10, 12_000, 7).symmetrize())
}

/// Sources spread across the vertex range, including repeats — serving
/// must tolerate duplicate outstanding queries for the same source.
fn sources(k: usize, n: u32) -> Vec<u32> {
    (0..k as u32)
        .map(|i| (i.wrapping_mul(2654435761) ^ 0x9e37) % n)
        .collect()
}

fn standalone_depths(layout: &GraphLayout, source: u32) -> Vec<u32> {
    // The pre-session facade path: construct, run, drop — the oracle the
    // serving layer is measured against.
    let gr = GraphReduce::new(
        Bfs::new(source),
        layout,
        Platform::paper_node(),
        Options::optimized(),
    );
    gr.run().expect("standalone bfs").vertex_values
}

fn check_k_batched_queries(k: usize) {
    let layout = fixture();
    let n = layout.num_vertices();
    let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
    let mut serve = GraphServe::new(&session);
    let srcs = sources(k, n);
    for &s in &srcs {
        serve.submit(QuerySpec::Bfs { source: s }, None).unwrap();
    }
    let outcomes = serve.drain().unwrap();
    assert_eq!(outcomes.len(), k);
    // K ≤ 64 ⇒ exactly one MS-BFS batch carries every query.
    assert_eq!(serve.ticks(), 1, "K={k} should fold into one batch");
    for (i, o) in outcomes.iter().enumerate() {
        let QuerySpec::Bfs { source } = o.spec else {
            panic!("bfs outcome expected")
        };
        assert_eq!(source, srcs[i], "EDF with no deadlines preserves FIFO");
        let want = standalone_depths(&layout, source);
        assert_eq!(
            o.output,
            QueryOutput::Depths(want),
            "K={k} query {} (source {source}) diverged from standalone",
            o.id
        );
        // Stats demux: every query names the batch that carried it, its
        // own lane bit, and the shared amortization width.
        assert_eq!(o.stats.batch, 0);
        assert_eq!(o.stats.lane, i as u32);
        assert_eq!(o.stats.batch_size, k as u32);
        assert_eq!(o.stats.run.algorithm, "ms-bfs-levels");
        assert!(o.stats.deadline_met);
    }
}

#[test]
fn one_batched_query_matches_standalone() {
    check_k_batched_queries(1);
}

#[test]
fn four_batched_queries_match_standalone() {
    check_k_batched_queries(4);
}

#[test]
fn thirty_two_batched_queries_match_standalone() {
    check_k_batched_queries(32);
}

#[test]
fn mixed_deadline_orders_change_scheduling_not_answers() {
    let layout = fixture();
    let n = layout.num_vertices();
    let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
    let srcs = sources(8, n);

    // Order A: tight deadlines interleaved with loose/no deadlines.
    let deadlines_a: Vec<Option<u64>> = vec![
        Some(5),
        Some(1),
        None,
        Some(1),
        Some(9),
        None,
        Some(2),
        Some(1),
    ];
    // Order B: same queries submitted in reverse.
    let cfg = ServeConfig {
        max_pending: 64,
        max_batch: 3, // force several batches so EDF ordering matters
    };

    let run = |order: Vec<(u32, Option<u64>)>| {
        let mut serve = GraphServe::with_config(&session, cfg);
        for (s, d) in order {
            serve.submit(QuerySpec::Bfs { source: s }, d).unwrap();
        }
        let mut outcomes = serve.drain().unwrap();
        // Completion order differs between A and B; compare per-source.
        outcomes.sort_by_key(|o| match o.spec {
            QuerySpec::Bfs { source } => source,
            _ => unreachable!(),
        });
        outcomes
    };

    let order_a: Vec<(u32, Option<u64>)> = srcs
        .iter()
        .copied()
        .zip(deadlines_a.iter().copied())
        .collect();
    let mut order_b = order_a.clone();
    order_b.reverse();

    let a = run(order_a);
    let b = run(order_b);
    assert_eq!(a.len(), b.len());
    for (oa, ob) in a.iter().zip(&b) {
        assert_eq!(oa.spec, ob.spec);
        assert_eq!(
            oa.output, ob.output,
            "submission order changed an answer for {:?}",
            oa.spec
        );
        let QuerySpec::Bfs { source } = oa.spec else {
            panic!()
        };
        assert_eq!(
            oa.output,
            QueryOutput::Depths(standalone_depths(&layout, source))
        );
    }
}

#[test]
fn stats_lanes_demux_one_decision_trail_per_query() {
    let layout = fixture();
    let session = GraphSession::new(&layout, Platform::paper_node(), Options::optimized());
    let (obs, sink) = Observer::recording();
    let mut serve = GraphServe::new(&session).with_observer(obs);
    let srcs = sources(4, layout.num_vertices());
    let ids: Vec<u64> = srcs
        .iter()
        .map(|&s| serve.submit(QuerySpec::Bfs { source: s }, None).unwrap())
        .collect();
    let outcomes = serve.drain().unwrap();
    let rec = sink.recorded();

    // Every query id appears exactly once as an admit and once as a done,
    // with the done naming the (batch, lane) its stats lane claims.
    for (o, id) in outcomes.iter().zip(&ids) {
        assert_eq!(o.id, *id);
        let admits = rec
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::QueryAdmit { query, .. } if query == id))
            .count();
        assert_eq!(admits, 1, "query {id} admit trail");
        let done = rec
            .decisions
            .iter()
            .find_map(|d| match d {
                Decision::QueryDone {
                    query, batch, lane, ..
                } if query == id => Some((*batch, *lane)),
                _ => None,
            })
            .expect("query done decision");
        assert_eq!(done, (o.stats.batch, o.stats.lane));
    }
    // One BatchFormed for the single folded batch.
    let batches = rec
        .decisions
        .iter()
        .filter(|d| matches!(d, Decision::BatchFormed { .. }))
        .count();
    assert_eq!(batches, 1);
}

//! Query specifications and per-query outcome records.

use graphreduce::RunStats;

/// Server-unique query identifier, assigned at admission.
pub type QueryId = u64;

/// A point query against the served graph.
///
/// BFS and SSSP are per-source traversals; PageRank and CC are whole-graph
/// snapshots. Only BFS queries batch (K sources → one MS-BFS sweep); the
/// others run as singleton batches on the shared session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuerySpec {
    /// Tree depths from `source` ([`gr_algorithms::Bfs`] semantics).
    Bfs { source: u32 },
    /// Shortest-path distances from `source`.
    Sssp { source: u32 },
    /// A PageRank snapshot (paper parameters: damping 0.85, ε 1e-4).
    PageRank,
    /// A connected-components snapshot (min-label propagation).
    Cc,
}

impl QuerySpec {
    /// Short kind tag used in decisions and batching compatibility.
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::Bfs { .. } => "bfs",
            QuerySpec::Sssp { .. } => "sssp",
            QuerySpec::PageRank => "pagerank",
            QuerySpec::Cc => "cc",
        }
    }
}

/// A query's demultiplexed answer, in the same representation the
/// standalone algorithm produces.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// BFS tree depths per vertex (`u32::MAX` = unreached).
    Depths(Vec<u32>),
    /// SSSP distances per vertex (`f32::INFINITY` = unreachable).
    Distances(Vec<f32>),
    /// PageRank score per vertex.
    Ranks(Vec<f32>),
    /// Component label per vertex.
    Components(Vec<u32>),
}

/// Per-query statistics lane, demultiplexed from the batch that carried
/// the query: the query's identity within the batch plus a clone of the
/// full engine [`RunStats`] for the run it rode on (shared by every
/// query in the batch — `batch_size` says how many ways it amortizes).
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// The query this lane belongs to.
    pub query: QueryId,
    /// Batch that executed it.
    pub batch: u64,
    /// Lane within the batch (MS-BFS bit index; 0 for singletons).
    pub lane: u32,
    /// Queries multiplexed into the same execution.
    pub batch_size: u32,
    /// The deadline the query was submitted with, if any (virtual service
    /// ticks; one tick per executed batch).
    pub deadline: Option<u64>,
    /// Whether the carrying batch completed by the deadline (true when no
    /// deadline was set).
    pub deadline_met: bool,
    /// Engine statistics of the carrying run.
    pub run: RunStats,
}

/// One completed query: its spec, demuxed answer, and stats lane.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    pub id: QueryId,
    pub spec: QuerySpec,
    pub output: QueryOutput,
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_tags() {
        assert_eq!(QuerySpec::Bfs { source: 3 }.kind(), "bfs");
        assert_eq!(QuerySpec::Sssp { source: 3 }.kind(), "sssp");
        assert_eq!(QuerySpec::PageRank.kind(), "pagerank");
        assert_eq!(QuerySpec::Cc.kind(), "cc");
    }
}

//! Admission control: a bounded pending queue with audit decisions.

use gr_observe::{Decision, Observer};

/// Serving-policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Pending-queue cap: submissions beyond this are rejected.
    pub max_pending: usize,
    /// Largest BFS batch folded into one MS-BFS sweep (clamped to 64,
    /// the bit-parallel lane width).
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_pending: 256,
            max_batch: 64,
        }
    }
}

impl ServeConfig {
    /// The effective batch width: at least 1, at most the 64 MS-BFS lanes.
    pub fn batch_width(&self) -> usize {
        self.max_batch.clamp(1, 64)
    }
}

/// A submission the admission controller turned away.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Kind tag of the rejected query.
    pub kind: &'static str,
    /// Pending-queue depth at rejection time.
    pub queue_depth: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} query rejected: pending queue full ({} queued)",
            self.kind, self.queue_depth
        )
    }
}

impl std::error::Error for Rejected {}

/// Bounds the pending queue and logs one decision per verdict: admitted
/// submissions get a `QueryAdmit` (their decision lane opens), rejected
/// ones a `QueryReject`.
#[derive(Clone, Debug, Default)]
pub struct AdmissionController {
    cfg: ServeConfig,
}

impl AdmissionController {
    pub fn new(cfg: ServeConfig) -> Self {
        AdmissionController { cfg }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Decide one submission against the current queue depth.
    pub fn admit(
        &self,
        observer: &Observer,
        query: u64,
        kind: &'static str,
        queue_depth: usize,
    ) -> Result<(), Rejected> {
        if queue_depth >= self.cfg.max_pending {
            observer.decision(|| Decision::QueryReject {
                kind,
                queue_depth: queue_depth as u64,
                rationale: "queue full",
            });
            return Err(Rejected { kind, queue_depth });
        }
        observer.decision(|| Decision::QueryAdmit {
            query,
            kind,
            queue_depth: queue_depth as u64 + 1,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_observe::Observer;

    #[test]
    fn rejects_at_cap_and_logs_both_verdicts() {
        let ctl = AdmissionController::new(ServeConfig {
            max_pending: 2,
            max_batch: 64,
        });
        let (obs, sink) = Observer::recording();
        assert!(ctl.admit(&obs, 0, "bfs", 0).is_ok());
        assert!(ctl.admit(&obs, 1, "bfs", 1).is_ok());
        let err = ctl.admit(&obs, 2, "bfs", 2).unwrap_err();
        assert_eq!(err.queue_depth, 2);
        let rec = sink.recorded();
        assert_eq!(rec.serve_decisions(), 3);
        assert!(rec
            .decisions
            .iter()
            .any(|d| matches!(d, gr_observe::Decision::QueryReject { .. })));
    }

    #[test]
    fn batch_width_clamps_to_msbfs_lanes() {
        let wide = ServeConfig {
            max_pending: 8,
            max_batch: 1000,
        };
        assert_eq!(wide.batch_width(), 64);
        let zero = ServeConfig {
            max_pending: 8,
            max_batch: 0,
        };
        assert_eq!(zero.batch_width(), 1);
    }
}

//! The serving pump: EDF-ordered batching over one shared session.

use gr_algorithms::{Bfs, Cc, MsBfsLevels, PageRank, Sssp};
use gr_observe::{Decision, Observer};
use graphreduce::{EngineError, GraphSession, RunStats};

use crate::admission::{AdmissionController, Rejected, ServeConfig};
use crate::query::{QueryId, QueryOutcome, QueryOutput, QuerySpec, QueryStats};

/// The PageRank program served for [`QuerySpec::PageRank`] snapshots —
/// the paper's evaluation parameters (damping 0.85, ε 1e-4, 60-iteration
/// budget). Public so equivalence tests and benches can run the identical
/// standalone program.
pub fn pagerank_program() -> PageRank {
    PageRank {
        damping: 0.85,
        epsilon: 1e-4,
        max_iters: 60,
    }
}

struct Pending {
    id: QueryId,
    spec: QuerySpec,
    deadline: Option<u64>,
}

/// A query server over one borrowed [`GraphSession`].
///
/// `submit` runs admission control and queues; `drain` executes everything
/// pending: queries are ordered earliest-deadline-first (FIFO within a
/// deadline), compatible BFS queries fold into one
/// [`MsBfsLevels`] sweep of up to [`ServeConfig::max_batch`] lanes, and
/// every query's answer + stats lane is demultiplexed from the batch that
/// carried it. Time is counted in virtual *service ticks* — one tick per
/// executed batch — which is what deadlines are checked against; the
/// open-loop latency trace with real wall times lives in the serve bench.
pub struct GraphServe<'s, 'g> {
    session: &'s GraphSession<'g>,
    admission: AdmissionController,
    observer: Observer,
    next_id: QueryId,
    next_batch: u64,
    ticks: u64,
    pending: Vec<Pending>,
}

impl<'s, 'g> GraphServe<'s, 'g> {
    /// Serve `session` under the default [`ServeConfig`].
    pub fn new(session: &'s GraphSession<'g>) -> Self {
        Self::with_config(session, ServeConfig::default())
    }

    pub fn with_config(session: &'s GraphSession<'g>, cfg: ServeConfig) -> Self {
        GraphServe {
            session,
            admission: AdmissionController::new(cfg),
            observer: Observer::disabled(),
            next_id: 0,
            next_batch: 0,
            ticks: 0,
            pending: Vec::new(),
        }
    }

    /// Attach an observer: admission/rejection/batch/completion decisions
    /// land in its sink, and each batch's engine run is tagged with a
    /// `b<batch>/` device lane.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Queries queued and not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Completed service ticks (executed batches) so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Submit one query with an optional deadline in service ticks.
    /// Admission may reject it (bounded queue); an admitted query is
    /// answered by the next [`GraphServe::drain`].
    pub fn submit(&mut self, spec: QuerySpec, deadline: Option<u64>) -> Result<QueryId, Rejected> {
        self.admission.admit(
            &self.observer,
            self.next_id,
            spec.kind(),
            self.pending.len(),
        )?;
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(Pending { id, spec, deadline });
        Ok(id)
    }

    /// Execute every pending query; returns outcomes in completion order.
    ///
    /// Deterministic: the same set of admitted queries produces the same
    /// batches and bit-identical per-query answers regardless of
    /// submission order (deadlines only reorder *when* a query's batch
    /// runs, never what it computes).
    pub fn drain(&mut self) -> Result<Vec<QueryOutcome>, EngineError> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            // EDF with FIFO tiebreak: earliest deadline first, admission
            // order within a deadline class (None sorts last).
            self.pending
                .sort_by_key(|p| (p.deadline.unwrap_or(u64::MAX), p.id));
            let members: Vec<Pending> = if self.pending[0].spec.kind() == "bfs" {
                // Fold every pending BFS (in EDF order) into this batch,
                // up to the MS-BFS lane width.
                let width = self.admission.config().batch_width();
                let mut taken = Vec::new();
                let mut i = 0;
                while i < self.pending.len() && taken.len() < width {
                    if self.pending[i].spec.kind() == "bfs" {
                        taken.push(self.pending.remove(i));
                    } else {
                        i += 1;
                    }
                }
                taken
            } else {
                vec![self.pending.remove(0)]
            };
            let batch = self.next_batch;
            self.next_batch += 1;
            let kind = members[0].spec.kind();
            let size = members.len() as u32;
            self.observer
                .decision(|| Decision::BatchFormed { batch, size, kind });
            self.execute_batch(batch, members, &mut out)?;
        }
        Ok(out)
    }

    fn execute_batch(
        &mut self,
        batch: u64,
        members: Vec<Pending>,
        out: &mut Vec<QueryOutcome>,
    ) -> Result<(), EngineError> {
        let (outputs, run) = match &members[0].spec {
            QuerySpec::Bfs { .. } => {
                let sources: Vec<u32> = members
                    .iter()
                    .map(|p| match p.spec {
                        QuerySpec::Bfs { source } => source,
                        _ => unreachable!("batch members are kind-compatible"),
                    })
                    .collect();
                let lanes = sources.len();
                let prog = MsBfsLevels::new(sources);
                let res = self.run_on_session(&prog, batch)?;
                let outs = MsBfsLevels::all_lane_depths(&res.vertex_values, lanes)
                    .into_iter()
                    .map(QueryOutput::Depths)
                    .collect();
                (outs, res.stats)
            }
            QuerySpec::Sssp { source } => {
                let prog = Sssp::new(*source);
                let res = self.run_on_session(&prog, batch)?;
                (vec![QueryOutput::Distances(res.vertex_values)], res.stats)
            }
            QuerySpec::PageRank => {
                let prog = pagerank_program();
                let res = self.run_on_session(&prog, batch)?;
                let ranks = res.vertex_values.iter().map(|v| v.rank).collect();
                (vec![QueryOutput::Ranks(ranks)], res.stats)
            }
            QuerySpec::Cc => {
                let prog = Cc;
                let res = self.run_on_session(&prog, batch)?;
                (vec![QueryOutput::Components(res.vertex_values)], res.stats)
            }
        };
        self.ticks += 1;
        let size = outputs.len() as u32;
        for (lane, (p, output)) in members.into_iter().zip(outputs).enumerate() {
            let deadline_met = p.deadline.is_none_or(|d| self.ticks <= d);
            let (query, lane32) = (p.id, lane as u32);
            self.observer.decision(|| Decision::QueryDone {
                query,
                batch,
                lane: lane32,
                deadline_met,
            });
            out.push(QueryOutcome {
                id: p.id,
                spec: p.spec,
                output,
                stats: QueryStats {
                    query,
                    batch,
                    lane: lane32,
                    batch_size: size,
                    deadline: p.deadline,
                    deadline_met,
                    run: run.clone(),
                },
            });
        }
        Ok(())
    }

    fn run_on_session<P: graphreduce::GasProgram>(
        &self,
        prog: &P,
        batch: u64,
    ) -> Result<graphreduce::RunResult<P>, EngineError> {
        self.session
            .query(prog)
            .with_observer(self.observer.clone())
            .with_lane(format!("b{batch}/"))
            .run()
    }
}

/// Convenience for serial baselines and tests: run one standalone BFS on
/// the session (no batching, no serving state).
pub fn standalone_bfs(
    session: &GraphSession<'_>,
    source: u32,
) -> Result<(Vec<u32>, RunStats), EngineError> {
    let prog = Bfs::new(source);
    let res = session.query(&prog).run()?;
    Ok((res.vertex_values, res.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gr_graph::{gen, GraphLayout};
    use gr_sim::Platform;
    use graphreduce::Options;

    fn session_fixture(layout: &GraphLayout) -> GraphSession<'_> {
        GraphSession::new(layout, Platform::paper_node(), Options::optimized())
    }

    #[test]
    fn batched_bfs_queries_match_standalone_runs() {
        let layout = GraphLayout::build(&gen::uniform(400, 2400, 5).symmetrize());
        let session = session_fixture(&layout);
        let mut serve = GraphServe::new(&session);
        let sources = [0u32, 7, 100, 399];
        for &s in &sources {
            serve.submit(QuerySpec::Bfs { source: s }, None).unwrap();
        }
        let outcomes = serve.drain().unwrap();
        assert_eq!(outcomes.len(), sources.len());
        for o in &outcomes {
            let QuerySpec::Bfs { source } = o.spec else {
                panic!("bfs outcome")
            };
            let (want, _) = standalone_bfs(&session, source).unwrap();
            assert_eq!(o.output, QueryOutput::Depths(want), "query {}", o.id);
            assert_eq!(o.stats.batch_size, 4);
            assert_eq!(o.stats.run.algorithm, "ms-bfs-levels");
        }
        // One batch for all four queries.
        assert_eq!(serve.ticks(), 1);
    }

    #[test]
    fn snapshot_queries_run_as_singletons() {
        let layout = GraphLayout::build(&gen::uniform(300, 1500, 6).symmetrize());
        let session = session_fixture(&layout);
        let mut serve = GraphServe::new(&session);
        serve.submit(QuerySpec::Cc, None).unwrap();
        serve.submit(QuerySpec::PageRank, None).unwrap();
        serve.submit(QuerySpec::Sssp { source: 3 }, None).unwrap();
        let outcomes = serve.drain().unwrap();
        assert_eq!(outcomes.len(), 3);
        for o in &outcomes {
            assert_eq!(o.stats.batch_size, 1);
        }
        let cc = session.query(&Cc).run().unwrap();
        assert_eq!(
            outcomes[0].output,
            QueryOutput::Components(cc.vertex_values)
        );
        let sssp = session.query(&Sssp::new(3)).run().unwrap();
        assert_eq!(
            outcomes[2].output,
            QueryOutput::Distances(sssp.vertex_values)
        );
    }

    #[test]
    fn deadlines_order_batches_not_results() {
        let layout = GraphLayout::build(&gen::uniform(200, 1200, 7).symmetrize());
        let session = session_fixture(&layout);
        // Cap batches at 2 lanes so deadlines actually split the queries.
        let cfg = ServeConfig {
            max_pending: 16,
            max_batch: 2,
        };
        let mut serve = GraphServe::with_config(&session, cfg);
        // Submitted out of deadline order.
        serve
            .submit(QuerySpec::Bfs { source: 10 }, Some(9))
            .unwrap(); // id 0
        serve
            .submit(QuerySpec::Bfs { source: 20 }, Some(1))
            .unwrap(); // id 1
        serve.submit(QuerySpec::Bfs { source: 30 }, None).unwrap(); //    id 2
        serve
            .submit(QuerySpec::Bfs { source: 40 }, Some(1))
            .unwrap(); // id 3
        let outcomes = serve.drain().unwrap();
        // Batch 0 = the two deadline-1 queries (EDF), batch 1 = the rest.
        let by_id: Vec<u64> = outcomes.iter().map(|o| o.stats.batch).collect();
        let ids: Vec<QueryId> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
        assert_eq!(by_id, vec![0, 0, 1, 1]);
        // The tight deadline was met by the first batch; results are the
        // standalone answers regardless of scheduling.
        assert!(outcomes[0].stats.deadline_met);
        for o in &outcomes {
            let QuerySpec::Bfs { source } = o.spec else {
                panic!()
            };
            let (want, _) = standalone_bfs(&session, source).unwrap();
            assert_eq!(o.output, QueryOutput::Depths(want));
        }
    }

    #[test]
    fn per_query_decision_lanes_are_complete() {
        let layout = GraphLayout::build(&gen::uniform(100, 500, 8).symmetrize());
        let session = session_fixture(&layout);
        let (obs, sink) = Observer::recording();
        let mut serve = GraphServe::with_config(
            &session,
            ServeConfig {
                max_pending: 2,
                max_batch: 64,
            },
        )
        .with_observer(obs);
        serve.submit(QuerySpec::Bfs { source: 0 }, None).unwrap();
        serve.submit(QuerySpec::Bfs { source: 1 }, None).unwrap();
        assert!(serve.submit(QuerySpec::Bfs { source: 2 }, None).is_err());
        serve.drain().unwrap();
        let rec = sink.recorded();
        // 2 admits + 1 reject + 1 batch + 2 dones.
        assert_eq!(rec.serve_decisions(), 6);
        let dones: Vec<_> = rec
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::QueryDone { .. }))
            .collect();
        assert_eq!(dones.len(), 2);
    }
}

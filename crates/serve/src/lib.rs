//! # gr-serve — concurrent query serving over a shared graph session
//!
//! The ROADMAP's north star is queries/sec, not ms/run: load and govern a
//! graph **once** (a [`graphreduce::GraphSession`]), then multiplex many
//! point queries against the shared shards. This crate is that serving
//! layer:
//!
//! * [`GraphServe`] — the server: a pending-query queue over one borrowed
//!   session, drained deterministically in earliest-deadline-first order.
//! * [`AdmissionController`] ([`ServeConfig`]) — bounds the pending queue;
//!   over-cap submissions are rejected with a
//!   [`Decision::QueryReject`](gr_observe::Decision) instead of queuing
//!   without bound.
//! * Batching — up to `max_batch` (≤ 64) compatible pending BFS queries
//!   fold into **one** [`gr_algorithms::MsBfsLevels`] sweep; each query's
//!   depth vector is demultiplexed from its lane bit-identically to a
//!   standalone [`gr_algorithms::Bfs`] run (`levels[i]` records lane `i`'s
//!   arrival iteration, which *is* the BFS depth).
//! * Per-query observability — every query gets its own decision-log lane
//!   (`QueryAdmit` → `QueryDone` with query/batch/lane ids), and every
//!   outcome carries a per-query [`QueryStats`] demuxed from the batch's
//!   [`graphreduce::RunStats`].
//!
//! Queries are *concurrent* in the serving sense: many are outstanding at
//! once and share one session's plans and compressed topology; execution
//! itself is a deterministic single-threaded pump (`drain`), which is what
//! makes the equivalence suites exact. See `docs/SERVING.md`.

mod admission;
mod query;
mod server;

pub use admission::{AdmissionController, Rejected, ServeConfig};
pub use query::{QueryId, QueryOutcome, QueryOutput, QuerySpec, QueryStats};
pub use server::{pagerank_program, standalone_bfs, GraphServe};

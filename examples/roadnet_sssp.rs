//! Route distances on a belgium_osm-class road network: SSSP with random
//! edge weights, showing the dynamic-frontier behaviour on huge-diameter
//! graphs (hundreds of iterations with tiny frontiers — the regime where
//! frontier management matters most, Section 6.2.3).
//!
//! ```sh
//! cargo run --release --example roadnet_sssp
//! ```

use graphreduce_repro::algorithms::Sssp;
use graphreduce_repro::core::{GraphReduce, Options};
use graphreduce_repro::graph::{Dataset, GraphLayout};
use graphreduce_repro::sim::Platform;

fn main() {
    let scale = 64;
    let ds = Dataset::BelgiumOsm;
    let layout = GraphLayout::build(&ds.generate_weighted(scale));
    // Shrink the device further so even this sparse graph needs shards.
    let platform = Platform::paper_node_scaled(scale * 64);
    println!(
        "{} stand-in: |V|={}, |E|={} (weighted)",
        ds.name(),
        layout.num_vertices(),
        layout.num_edges()
    );

    let source = 0u32;
    let with_fm = GraphReduce::new(
        Sssp::new(source),
        &layout,
        platform.clone(),
        Options::optimized(),
    )
    .run()
    .expect("plan fits");
    let without_fm = GraphReduce::new(
        Sssp::new(source),
        &layout,
        platform,
        Options::optimized().with_frontier_management(false),
    )
    .run()
    .expect("plan fits");
    assert_eq!(with_fm.vertex_values, without_fm.vertex_values);

    let reached = with_fm
        .vertex_values
        .iter()
        .filter(|d| d.is_finite())
        .count();
    let furthest = with_fm
        .vertex_values
        .iter()
        .filter(|d| d.is_finite())
        .cloned()
        .fold(0.0f32, f32::max);
    println!(
        "reached {reached}/{} vertices from {source}; longest shortest path {:.1}",
        layout.num_vertices(),
        furthest
    );
    println!(
        "{} iterations; peak frontier {} of {} vertices; {:.0}% of iterations below half-peak",
        with_fm.stats.iterations,
        with_fm.stats.max_frontier(),
        layout.num_vertices(),
        with_fm.stats.pct_iterations_below_half_max()
    );
    println!(
        "\nwith frontier management:    {:>12}  ({:>6.1} MB over PCIe, {} shard copies skipped)",
        with_fm.stats.elapsed,
        (with_fm.stats.bytes_h2d + with_fm.stats.bytes_d2h) as f64 / 1e6,
        with_fm.stats.skipped_shard_copies
    );
    println!(
        "without frontier management: {:>12}  ({:>6.1} MB over PCIe)",
        without_fm.stats.elapsed,
        (without_fm.stats.bytes_h2d + without_fm.stats.bytes_d2h) as f64 / 1e6
    );
    println!(
        "frontier management saves {:.1}% of the run on this high-diameter graph",
        100.0
            * (1.0 - with_fm.stats.elapsed.as_secs_f64() / without_fm.stats.elapsed.as_secs_f64())
    );
}

//! PageRank on a uk-2002-class web crawl that exceeds GPU memory — the
//! workload the paper's introduction motivates (ranking pages of a crawl
//! too big for the device).
//!
//! Demonstrates: dataset stand-ins, out-of-core sharding, the optimized vs
//! unoptimized gap, and reading the per-iteration frontier trace.
//!
//! ```sh
//! cargo run --release --example webgraph_pagerank
//! ```

use graphreduce_repro::algorithms::PageRank;
use graphreduce_repro::core::{GraphReduce, Options};
use graphreduce_repro::graph::{dataset_bytes, Dataset, GraphLayout};
use graphreduce_repro::sim::Platform;

fn main() {
    // uk-2002 at 1/256 scale: still ~8x the scaled device memory.
    let scale = 256;
    let ds = Dataset::Uk2002;
    let platform = Platform::paper_node_scaled(scale);
    println!(
        "{}: |V|={}, |E|={}, ~{:.1} MB in memory vs {:.1} MB device",
        ds.name(),
        ds.vertices(scale),
        ds.edges(scale),
        dataset_bytes(ds, scale) as f64 / 1e6,
        platform.device.mem_capacity as f64 / 1e6,
    );
    let layout = GraphLayout::build(&ds.generate(scale));

    let pr = PageRank {
        epsilon: 1e-3,
        max_iters: 50,
        ..Default::default()
    };

    let optimized = GraphReduce::new(pr, &layout, platform.clone(), Options::optimized())
        .run()
        .expect("fits after sharding");
    let unoptimized = GraphReduce::new(pr, &layout, platform, Options::unoptimized())
        .run()
        .expect("fits after sharding");
    assert_eq!(optimized.vertex_values, unoptimized.vertex_values);

    // Top pages by rank.
    let mut ranked: Vec<(u32, f32)> = optimized
        .vertex_values
        .iter()
        .enumerate()
        .map(|(v, s)| (v as u32, s.rank))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top pages by rank:");
    for (v, r) in ranked.iter().take(5) {
        println!("  page {v:>8}  rank {r:.4}");
    }

    println!(
        "\n{} shards, K={} concurrent | {} iterations",
        optimized.stats.num_shards, optimized.stats.concurrent_shards, optimized.stats.iterations
    );
    println!(
        "optimized GR:   {:>12}  (memcpy {:>12}, {:5.1}% of run)",
        optimized.stats.elapsed,
        optimized.stats.memcpy_time,
        100.0 * optimized.stats.memcpy_share()
    );
    println!(
        "unoptimized GR: {:>12}  (memcpy {:>12}, {:5.1}% of run)",
        unoptimized.stats.elapsed,
        unoptimized.stats.memcpy_time,
        100.0 * unoptimized.stats.memcpy_share()
    );
    println!(
        "speedup from Section 5 optimizations: {:.2}x wall, {:.1}% less memcpy time",
        unoptimized.stats.elapsed.as_secs_f64() / optimized.stats.elapsed.as_secs_f64(),
        100.0
            * (1.0
                - optimized.stats.memcpy_time.as_secs_f64()
                    / unoptimized.stats.memcpy_time.as_secs_f64())
    );

    let sizes = optimized.stats.frontier_sizes();
    println!("\nfrontier size by iteration (converging vertices drop out):");
    for (i, s) in sizes.iter().enumerate() {
        if i < 10 || i % 5 == 0 || i + 1 == sizes.len() {
            println!("  iter {i:>3}: {s:>9} active vertices");
        }
    }
}

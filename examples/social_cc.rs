//! Community sizing on an orkut-class social network: Connected Components
//! out-of-core on GraphReduce, cross-checked against every baseline engine
//! the paper compares with (GraphChi, X-Stream on the host; CuSha,
//! MapGraph in device memory when the graph fits).
//!
//! ```sh
//! cargo run --release --example social_cc
//! ```

use graphreduce_repro::algorithms::Cc;
use graphreduce_repro::baselines::{CuSha, GraphChi, MapGraph, XStream};
use graphreduce_repro::core::{GraphReduce, Options};
use graphreduce_repro::graph::{Dataset, GraphLayout};
use graphreduce_repro::sim::Platform;

fn main() {
    let scale = 512;
    let ds = Dataset::Orkut;
    let layout = GraphLayout::build(&ds.generate(scale));
    let platform = Platform::paper_node_scaled(scale);
    println!(
        "{} stand-in at 1/{scale}: |V|={}, |E|={}",
        ds.name(),
        layout.num_vertices(),
        layout.num_edges()
    );

    // GraphReduce, out-of-core.
    let gr = GraphReduce::new(Cc, &layout, platform.clone(), Options::optimized())
        .run()
        .expect("sharded run fits");

    // CPU out-of-memory baselines.
    let chi = GraphChi::scaled(scale).run(&Cc, &layout, &platform.host);
    let xs = XStream::default().run(&Cc, &layout, &platform.host);
    assert_eq!(gr.vertex_values, chi.vertex_values);
    assert_eq!(gr.vertex_values, xs.vertex_values);

    println!("\nengine            time            vs GraphReduce");
    let grt = gr.stats.elapsed.as_secs_f64();
    println!("graphreduce      {:>12}    1.00x", gr.stats.elapsed);
    println!(
        "graphchi         {:>12}    {:.2}x slower",
        chi.stats.elapsed,
        chi.stats.elapsed.as_secs_f64() / grt
    );
    println!(
        "x-stream         {:>12}    {:.2}x slower",
        xs.stats.elapsed,
        xs.stats.elapsed.as_secs_f64() / grt
    );

    // In-GPU-memory engines refuse out-of-memory graphs — the limitation
    // GraphReduce exists to remove (Table 1).
    match CuSha::default().run(&Cc, &layout, &platform) {
        Err(e) => println!("cusha            refused: {e}"),
        Ok(run) => println!("cusha            {:>12}", run.stats.elapsed),
    }
    match MapGraph::default().run(&Cc, &layout, &platform) {
        Err(e) => println!("mapgraph         refused: {e}"),
        Ok(run) => println!("mapgraph         {:>12}", run.stats.elapsed),
    }

    // Community structure summary.
    let mut counts = std::collections::HashMap::new();
    for &label in &gr.vertex_values {
        *counts.entry(label).or_insert(0u64) += 1;
    }
    let mut sizes: Vec<u64> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\n{} components; largest {} vertices ({:.1}% of graph)",
        sizes.len(),
        sizes[0],
        100.0 * sizes[0] as f64 / layout.num_vertices() as f64
    );
}

//! Quickstart: write a GAS program (Connected Components, exactly the
//! paper's Figure 6 example) and run it out-of-core on the virtual K20c.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphreduce_repro::core::{report, GasProgram, GraphReduce, InitialFrontier, Options};
use graphreduce_repro::graph::{gen, GraphLayout};
use graphreduce_repro::observe::Observer;
use graphreduce_repro::sim::Platform;

/// Connected Components: gatherMap forwards the neighbor's label,
/// gatherReduce takes the min, apply keeps the smaller label, no scatter.
/// (Compare with Figure 6 of the paper — it is a line-for-line transcription.)
struct ConnectedComponents;

impl GasProgram for ConnectedComponents {
    type VertexValue = u32;
    type EdgeValue = ();
    type Gather = u32;

    fn name(&self) -> &'static str {
        "cc-quickstart"
    }

    fn init_vertex(&self, v: u32, _out_degree: u32) -> u32 {
        v
    }

    fn initial_frontier(&self) -> InitialFrontier {
        InitialFrontier::All
    }

    fn gather_identity(&self) -> u32 {
        u32::MAX
    }

    fn gather_map(&self, _dst: &u32, src_label: &u32, _edge: &(), _w: f32) -> u32 {
        *src_label
    }

    fn gather_reduce(&self, left: u32, right: u32) -> u32 {
        left.min(right)
    }

    fn apply(&self, cur_label: &mut u32, label: u32, _iteration: u32) -> bool {
        let changed = label < *cur_label;
        *cur_label = (*cur_label).min(label);
        changed
    }

    fn scatter(&self, _src: &u32, _dst: &u32, _edge: &mut ()) {
        // no scatter operations for the CC algorithm
    }
}

fn main() {
    // An undirected social-network-like graph, stored as directed pairs.
    let edges = gen::rmat_g500(14, 150_000, 42).symmetrize();
    let layout = GraphLayout::build(&edges);
    println!(
        "graph: {} vertices, {} directed edges",
        layout.num_vertices(),
        layout.num_edges()
    );

    // A K20c whose memory is 1/4096 of the real card, so this small graph
    // is *out of device memory* and must be streamed in shards.
    let platform = Platform::paper_node_scaled(4096);
    // Record the run: every phase span, frontier decision, and metric
    // flows to the sink, and becomes a machine-readable report below.
    let (observer, sink) = Observer::recording();
    let gr = GraphReduce::new(ConnectedComponents, &layout, platform, Options::optimized())
        .with_observer(observer);
    let out = gr.run().expect("planning fits this device");

    let components: std::collections::HashSet<u32> = out.vertex_values.iter().copied().collect();
    println!(
        "components: {} (in {} iterations)",
        components.len(),
        out.stats.iterations
    );
    println!(
        "shards: {} ({} concurrent), resident: {}",
        out.stats.num_shards, out.stats.concurrent_shards, out.stats.all_resident
    );
    println!(
        "virtual time: {} | memcpy busy: {} ({:.1}% of run) | kernels busy: {}",
        out.stats.elapsed,
        out.stats.memcpy_time,
        100.0 * out.stats.memcpy_share(),
        out.stats.kernel_time
    );
    println!(
        "PCIe traffic: {:.1} MB in, {:.1} MB out over {} copies; {} kernel launches",
        out.stats.bytes_h2d as f64 / 1e6,
        out.stats.bytes_d2h as f64 / 1e6,
        out.stats.copy_ops,
        out.stats.kernel_launches
    );
    println!(
        "frontier management skipped {} shard copies and {} kernel launches",
        out.stats.skipped_shard_copies, out.stats.skipped_kernel_launches
    );

    // Versioned run report (docs/OBSERVABILITY.md documents the schema).
    let rec = sink.recorded();
    let path = "results/quickstart_report.json";
    if std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(path, report::run_report(&out.stats, &rec)))
        .is_ok()
    {
        println!(
            "run report: {path} ({} decisions, {} spans recorded)",
            rec.decisions.len(),
            rec.spans.len()
        );
    }
}

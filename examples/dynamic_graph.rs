//! Dynamically evolving graphs (the paper's future-work item 3): maintain
//! connected components across edge insertions with warm-started
//! incremental runs instead of full recomputation.
//!
//! ```sh
//! cargo run --release --example dynamic_graph
//! ```

use graphreduce_repro::algorithms::Cc;
use graphreduce_repro::core::{GraphReduce, Options, WarmStart};
use graphreduce_repro::graph::{gen, EdgeList, GraphLayout};
use graphreduce_repro::sim::Platform;

fn main() {
    // A fragmented social graph: many components.
    let mut edges = gen::uniform(20_000, 30_000, 77).symmetrize().edges;
    let platform = Platform::paper_node_scaled(1024);

    let layout = GraphLayout::build(&EdgeList::from_edges(20_000, edges.clone()));
    let gr = GraphReduce::new(Cc, &layout, platform.clone(), Options::optimized());
    let mut state = gr.run().expect("initial run plans");
    let components = |labels: &[u32]| {
        labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    println!(
        "initial: {} components in {} iterations ({})",
        components(&state.vertex_values),
        state.stats.iterations,
        state.stats.elapsed
    );

    // Stream in batches of bridging edges; each batch reruns warm, seeding
    // only the endpoints it touched.
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut total_incremental_iters = 0;
    for batch in 0..5 {
        let mut seeds = Vec::new();
        for _ in 0..20 {
            let u = (rand() % 20_000) as u32;
            let v = (rand() % 20_000) as u32;
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
                seeds.push(u);
                seeds.push(v);
            }
        }
        let layout = GraphLayout::build(&EdgeList::from_edges(20_000, edges.clone()));
        let gr = GraphReduce::new(Cc, &layout, platform.clone(), Options::optimized());
        let warm = gr
            .run_warm(WarmStart {
                vertex_values: state.vertex_values,
                frontier: seeds,
            })
            .expect("incremental run plans");
        total_incremental_iters += warm.stats.iterations;
        println!(
            "batch {batch}: {} components after +20 edges | incremental: {} iterations, {}",
            components(&warm.vertex_values),
            warm.stats.iterations,
            warm.stats.elapsed
        );
        state = warm;
    }

    // Compare against recomputing from scratch at the final graph.
    let layout = GraphLayout::build(&EdgeList::from_edges(20_000, edges));
    let cold = GraphReduce::new(Cc, &layout, platform, Options::optimized())
        .run()
        .expect("cold run plans");
    assert_eq!(cold.vertex_values, state.vertex_values);
    println!(
        "\ncold recomputation: {} iterations ({}) vs {} incremental iterations across 5 batches",
        cold.stats.iterations, cold.stats.elapsed, total_incremental_iters
    );
}

//! Heat diffusion over a 3-D mesh — the Section 2.1 workload class with
//! **mutable edge state**: Scatter stamps temperatures onto out-edges,
//! Gather averages the stamped in-edges. Exercises the full five-phase
//! pipeline (no fusion/elimination applies) and exports the device
//! timeline as a Chrome trace for inspection in `chrome://tracing` or
//! Perfetto.
//!
//! ```sh
//! cargo run --release --example heat_simulation
//! # then load /tmp/graphreduce_heat_trace.json in chrome://tracing
//! ```

use graphreduce_repro::algorithms::Heat;
use graphreduce_repro::core::{GraphReduce, Options, StreamingMode};
use graphreduce_repro::graph::{gen, GraphLayout, GraphStats};
use graphreduce_repro::sim::{Gpu, KernelSpec, Platform};

fn main() {
    // A 3-D volume mesh, like the PDE datasets of Table 1.
    let el = gen::stencil3d(32_768, 32_768 * 18, 99).symmetrize();
    let layout = GraphLayout::build(&el);
    println!("{}\n", GraphStats::compute(&layout));

    let heat = Heat {
        alpha: 0.4,
        epsilon: 1e-2,
        max_iters: 120,
        hot: 1000.0,
    };
    let platform = Platform::paper_node_scaled(2048); // forces streaming

    let explicit = GraphReduce::new(heat, &layout, platform.clone(), Options::optimized())
        .run()
        .expect("plan fits");
    let zero_copy = GraphReduce::new(
        heat,
        &layout,
        platform.clone(),
        Options::optimized().with_streaming_mode(StreamingMode::ZeroCopySequential),
    )
    .run()
    .expect("plan fits");
    assert_eq!(explicit.vertex_values, zero_copy.vertex_values);

    let warm = explicit
        .vertex_values
        .iter()
        .filter(|&&t| t > heat.hot / 1000.0)
        .count();
    println!(
        "heat reached {warm}/{} vertices in {} iterations",
        layout.num_vertices(),
        explicit.stats.iterations
    );
    println!(
        "edge states written: {} stamped edges",
        explicit.edge_values.iter().filter(|&&e| e != 0.0).count()
    );
    println!("\nexplicit staging:  {}", explicit.stats);
    println!(
        "\nzero-copy streams: {} (same results, {} vs {} memcpy busy)",
        zero_copy.stats.elapsed, zero_copy.stats.memcpy_time, explicit.stats.memcpy_time
    );

    // Export a small standalone device timeline showing the stream/queue
    // structure (the engine's own runs stay internal; this reconstructs a
    // two-shard pipelined iteration for the trace).
    let mut gpu = Gpu::new(&platform);
    let s0 = gpu.create_stream();
    let s1 = gpu.create_stream();
    for (i, s) in [s0, s1, s0, s1].into_iter().enumerate() {
        gpu.h2d(s, 2_000_000, "shard.in-edges");
        gpu.launch(
            s,
            &KernelSpec::balanced("gatherMap", 500_000, 2.0, 4_000_000, 500_000),
        );
        gpu.launch(s, &KernelSpec::balanced("apply", 40_000, 4.0, 320_000, 0));
        gpu.h2d(s, 1_000_000, "shard.out-edges");
        gpu.launch(
            s,
            &KernelSpec::balanced("frontierActivate", 250_000, 1.0, 1_000_000, 250_000),
        );
        gpu.d2h(s, 5_000, "frontier.bits");
        if i == 1 {
            gpu.synchronize(); // BSP barrier between iterations
        }
    }
    gpu.synchronize();
    let trace = gpu.chrome_trace();
    let path = std::env::temp_dir().join("graphreduce_heat_trace.json");
    std::fs::write(&path, &trace).expect("write trace");
    println!(
        "\nwrote a {}-op device timeline to {} (open in chrome://tracing)",
        trace.matches("\"ph\":\"X\"").count(),
        path.display()
    );
}

//! # graphreduce-repro — workspace facade
//!
//! Re-exports the whole GraphReduce (SC '15) reproduction so examples and
//! cross-crate integration tests can `use graphreduce_repro::*`:
//!
//! * [`sim`] — the virtual accelerator substrate ([`gr_sim`]);
//! * [`graph`] — graph containers, generators, datasets ([`gr_graph`]);
//! * [`core`] — the GraphReduce framework itself ([`graphreduce`]);
//! * [`algorithms`] — BFS / SSSP / PageRank / CC / SpMV / Heat
//!   ([`gr_algorithms`]);
//! * [`baselines`] — GraphChi-, X-Stream-, CuSha-, MapGraph-style engines
//!   ([`gr_baselines`]);
//! * [`observe`] — structured events, metrics, decision logs, exporters
//!   ([`gr_observe`]).
//!
//! See README.md for a quickstart, DESIGN.md for the system inventory,
//! docs/ARCHITECTURE.md for the core crate's layered execution core,
//! and docs/OBSERVABILITY.md for the event/metrics layer.

pub use gr_algorithms as algorithms;
pub use gr_baselines as baselines;
pub use gr_graph as graph;
pub use gr_observe as observe;
pub use gr_sim as sim;
pub use graphreduce as core;

pub use gr_algorithms::{Bfs, Cc, Heat, PageRank, Spmv, Sssp};
pub use gr_graph::{Dataset, EdgeList, GraphLayout};
pub use gr_sim::Platform;
pub use graphreduce::{
    GasProgram, GraphReduce, InitialFrontier, MultiGraphReduce, Options, RunStats,
};
